package relay

import (
	"math/rand"
	"testing"
	"time"

	"infoslicing/internal/code"
	"infoslicing/internal/simnet"
	"infoslicing/internal/wire"
)

// Timer edge cases only a virtual clock can pin: under the wall clock these
// races land on one side or the other depending on scheduler luck; under
// simnet they land on one deterministic, documented side — network
// deliveries stamped at instant T fire before timers stamped at T.

// virtualNode builds a relay on a fresh virtual universe with zero-delay
// links, so a packet sent at T is processed at T.
func virtualNode(t *testing.T, id wire.NodeID, cfg Config) (*simnet.Script, *Node) {
	t.Helper()
	simnet.ReportSeed(t)
	s := simnet.NewScript(1, simnet.LinkProfile{})
	cfg.Shards = 1
	cfg.Clock = s.Clk
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(int64(id)))
	}
	n, err := New(id, s.Net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return s, n
}

// TestLivenessBoundaryHeartbeat: a heartbeat arriving at exactly the virtual
// instant the liveness sweep runs — silence == LivenessTimeout on the nose —
// deterministically wins the race (deliveries order before timers), so the
// parent is not reported; losing that same heartbeat gets the parent
// reported at that very sweep.
func TestLivenessBoundaryHeartbeat(t *testing.T) {
	const (
		flow = wire.FlowID(0xf00d)
		par  = wire.NodeID(101)
		chld = wire.NodeID(201)
	)
	run := func(sendBoundaryHeartbeat bool) int64 {
		s, n := virtualNode(t, 1, Config{
			Heartbeat:       10 * time.Millisecond,
			LivenessTimeout: 40 * time.Millisecond,
		})
		if err := s.Net.Attach(par, func(wire.NodeID, []byte) {}); err != nil {
			t.Fatal(err)
		}
		if err := s.Net.Attach(chld, func(wire.NodeID, []byte) {}); err != nil {
			t.Fatal(err)
		}
		injectFlowAt(n, flow, &wire.PerNodeInfo{
			Children:   []wire.NodeID{chld},
			ChildFlows: []wire.FlowID{0xc001},
			Key:        testKey(0x5a),
			DataMap:    []wire.DataForward{{Parent: par, Child: 0}},
		}, s.Clk.Now())
		if sendBoundaryHeartbeat {
			// lastHeard starts at t=0; the sweep at t=50ms is the first
			// where silence (50ms) exceeds the 40ms timeout. Land the
			// heartbeat at exactly t=50ms.
			s.At(50*time.Millisecond, func() {
				s.Net.Send(par, 1, wire.AppendHeartbeat(nil, flow))
			})
		}
		// Run past the boundary sweep but not so far that a *fresh* silence
		// window after the boundary heartbeat expires (50ms + 40ms).
		s.Run(85 * time.Millisecond)
		return n.Stats().ParentDownSent
	}
	if got := run(true); got != 0 {
		t.Fatalf("boundary heartbeat lost the race: %d report(s)", got)
	}
	if got := run(false); got == 0 {
		t.Fatal("silent parent never reported")
	}
}

// TestRoundWaitExpiryRacesArrival: the last missing slice of a round lands
// at exactly the RoundWait deadline. The delivery deterministically wins:
// the round forwards complete — once, with no regeneration — and the timer
// finds it already handled.
func TestRoundWaitExpiryRacesArrival(t *testing.T) {
	const (
		flow   = wire.FlowID(0xbeef)
		p1, p2 = wire.NodeID(11), wire.NodeID(12)
		chld   = wire.NodeID(21)
	)
	s, n := virtualNode(t, 1, Config{RoundWait: 40 * time.Millisecond})
	for _, id := range []wire.NodeID{p1, p2, chld} {
		if err := s.Net.Attach(id, func(wire.NodeID, []byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	injectFlowAt(n, flow, &wire.PerNodeInfo{
		Children:   []wire.NodeID{chld},
		ChildFlows: []wire.FlowID{0xcafe},
		Key:        testKey(0x11),
		Recode:     true,
		DataMap: []wire.DataForward{
			{Parent: p1, Child: 0}, {Parent: p2, Child: 0},
		},
	}, s.Clk.Now())

	rng := rand.New(rand.NewSource(7))
	enc, err := code.NewEncoder(2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 600)
	rng.Read(chunk)
	slices, err := enc.Encode(chunk)
	if err != nil {
		t.Fatal(err)
	}
	frame := func(sl code.Slice) []byte {
		slotLen := len(sl.Coeff) + len(sl.Payload) + 4
		buf := wire.AppendPacketHeader(nil, wire.MsgData, flow, 0, 2, uint16(slotLen), 1)
		return wire.AppendSlot(buf, sl)
	}
	// p1's slice opens the round at t=0, arming the 40ms round timer; p2's
	// slice lands at exactly the deadline.
	s.At(0, func() { s.Net.Send(p1, 1, frame(slices[0])) })
	s.At(40*time.Millisecond, func() { s.Net.Send(p2, 1, frame(slices[1])) })
	s.Run(100 * time.Millisecond)

	st := n.Stats()
	if st.PacketsOut != 2 {
		t.Fatalf("forwarded %d packets, want 2 (one per data-map entry, exactly once)", st.PacketsOut)
	}
	if st.Regenerated != 0 {
		t.Fatalf("regenerated %d slices; the on-time arrival should have made regeneration unnecessary", st.Regenerated)
	}
}

// TestGCSweepRacesSplice: a splice landing at exactly the GC sweep that
// would reap its idle flow refreshes the flow first (deliveries before
// timers) and keeps it alive; a splice arriving after the sweep finds the
// flow gone and — control traffic never creates state — dies silently.
func TestGCSweepRacesSplice(t *testing.T) {
	const flow = wire.FlowID(0x5711ce)
	key := testKey(0x77)
	mk := func(seq uint64, parent wire.NodeID) []byte {
		pi := &wire.PerNodeInfo{
			Children:   []wire.NodeID{41},
			ChildFlows: []wire.FlowID{0x41},
			Key:        key,
			Spliced:    true,
			DataMap:    []wire.DataForward{{Parent: parent, Child: 0}},
		}
		sealed, err := key.Seal(rand.New(rand.NewSource(int64(seq))), spliceBody(seq, pi))
		if err != nil {
			t.Fatal(err)
		}
		return wire.AppendSplice(nil, flow, sealed)
	}
	build := func() (*simnet.Script, *Node) {
		s, n := virtualNode(t, 1, Config{
			FlowTTL:    50 * time.Millisecond,
			GCInterval: 25 * time.Millisecond,
		})
		if err := s.Net.Attach(99, func(wire.NodeID, []byte) {}); err != nil {
			t.Fatal(err)
		}
		injectFlowAt(n, flow, &wire.PerNodeInfo{
			Children:   []wire.NodeID{41},
			ChildFlows: []wire.FlowID{0x41},
			Key:        key,
			DataMap:    []wire.DataForward{{Parent: 31, Child: 0}},
		}, s.Clk.Now())
		return s, n
	}

	// Arm 1: splice at exactly the reaping sweep (t=75ms: 75ms idle > 50ms
	// TTL). The splice refreshes lastActive first; the flow survives.
	s, n := build()
	s.At(75*time.Millisecond, func() { s.Net.Send(99, 1, mk(1, 32)) })
	s.Run(80 * time.Millisecond)
	if got := n.Stats().SplicesApplied; got != 1 {
		t.Fatalf("mid-sweep splice applied %d times, want 1", got)
	}
	if got := n.flowTableSize(); got != 1 {
		t.Fatalf("flow reaped despite same-instant splice: table size %d", got)
	}

	// Arm 2: splice strictly after the sweep. The flow is gone; the splice
	// must not resurrect it.
	s2, n2 := build()
	s2.At(76*time.Millisecond, func() { s2.Net.Send(99, 1, mk(1, 32)) })
	s2.Run(80 * time.Millisecond)
	if got := n2.Stats().SplicesApplied; got != 0 {
		t.Fatalf("post-sweep splice applied %d times, want 0", got)
	}
	if got := n2.flowTableSize(); got != 0 {
		t.Fatalf("splice resurrected a reaped flow: table size %d", got)
	}
}
