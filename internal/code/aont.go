package code

import (
	"fmt"
	"math/rand"

	"infoslicing/internal/gf"
)

// This file implements the information-theoretic variant sketched in §5:
// "Instead of chopping the data into d parts and then coding them, we can
// combine each of the d parts with d−1 random parts. This will increase the
// space required d-fold, but provides extremely strong information-theoretic
// security."
//
// Each real block m_i is embedded as the first element of a vector
// (m_i, r_1, ..., r_{d-1}) of d blocks where the r_j are uniformly random,
// and that vector is sliced with a random invertible d×d matrix. Unless the
// adversary holds *all d* slices of group i, its view is statistically
// independent of m_i — not merely computationally or pi-secure.

// ITGroup is the set of d slices protecting one real block.
type ITGroup struct {
	Slices []Slice
}

// ITEncode encodes msg with information-theoretic security at split factor
// d, returning d groups of d slices each (d^2 slices total, a d-fold space
// blow-up as the paper notes). Group i hides block i of the chopped message.
func ITEncode(msg []byte, d int, rng *rand.Rand) ([]ITGroup, error) {
	if d < 2 {
		return nil, fmt.Errorf("%w: information-theoretic mode needs d>=2", ErrBadParameters)
	}
	blocks := Chop(msg, d)
	blockLen := len(blocks[0])
	groups := make([]ITGroup, d)
	for i, m := range blocks {
		vec := make([][]byte, d)
		vec[0] = m
		for j := 1; j < d; j++ {
			r := make([]byte, blockLen)
			fillRandom(r, rng)
			vec[j] = r
		}
		a := gf.RandomInvertible(d, rng)
		payloads := a.MulBlocks(vec)
		g := ITGroup{Slices: make([]Slice, d)}
		for k := range g.Slices {
			g.Slices[k] = Slice{
				Coeff:   append([]byte(nil), a.Row(k)...),
				Payload: payloads[k],
			}
		}
		groups[i] = g
	}
	return groups, nil
}

// ITDecode reconstructs the message from the full set of groups produced by
// ITEncode. Every group must be complete (all d slices); the random filler
// blocks are discarded.
func ITDecode(groups []ITGroup, d int) ([]byte, error) {
	if len(groups) != d {
		return nil, fmt.Errorf("%w: have %d groups want %d", ErrNotEnoughSlices, len(groups), d)
	}
	blocks := make([][]byte, d)
	for i, g := range groups {
		vec, err := DecodeBlocks(d, g.Slices)
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", i, err)
		}
		blocks[i] = vec[0]
	}
	return Unchop(blocks)
}

func fillRandom(b []byte, rng *rand.Rand) {
	for i := range b {
		b[i] = byte(rng.Intn(gf.Order))
	}
}
