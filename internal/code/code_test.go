package code

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"infoslicing/internal/gf"
)

func newEnc(t *testing.T, d, dp int, seed int64) *Encoder {
	t.Helper()
	e, err := NewEncoder(d, dp, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := [][]byte{
		[]byte("Let's meet at 5pm"),
		{},
		{0},
		bytes.Repeat([]byte{0xab}, 1500),
		[]byte("x"),
	}
	for d := 1; d <= 6; d++ {
		e := newEnc(t, d, d, int64(d))
		for _, msg := range msgs {
			slices, err := e.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			if len(slices) != d {
				t.Fatalf("d=%d: got %d slices", d, len(slices))
			}
			got, err := Decode(d, slices)
			if err != nil {
				t.Fatalf("d=%d len=%d: %v", d, len(msg), err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("d=%d: round trip mismatch", d)
			}
		}
	}
}

func TestRedundantDecodeFromAnySubset(t *testing.T) {
	const d, dp = 3, 7
	e := newEnc(t, d, dp, 99)
	msg := []byte("redundant slicing survives churn")
	slices, err := e.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Every subset of size d must decode.
	idx := []int{0, 0, 0}
	for idx[0] = 0; idx[0] < dp; idx[0]++ {
		for idx[1] = idx[0] + 1; idx[1] < dp; idx[1]++ {
			for idx[2] = idx[1] + 1; idx[2] < dp; idx[2]++ {
				sub := []Slice{slices[idx[0]], slices[idx[1]], slices[idx[2]]}
				got, err := Decode(d, sub)
				if err != nil {
					t.Fatalf("subset %v: %v", idx, err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("subset %v: wrong message", idx)
				}
			}
		}
	}
}

func TestDecodeFailsWithTooFewSlices(t *testing.T) {
	e := newEnc(t, 4, 4, 5)
	slices, _ := e.Encode([]byte("secret"))
	if _, err := Decode(4, slices[:3]); err == nil {
		t.Fatal("decoding with d-1 slices should fail")
	}
	if Decodable(4, slices[:3]) {
		t.Fatal("d-1 slices reported decodable")
	}
	if !Decodable(4, slices) {
		t.Fatal("full set not decodable")
	}
}

func TestDecodeToleratesDuplicates(t *testing.T) {
	e := newEnc(t, 3, 3, 6)
	msg := []byte("dup tolerant")
	slices, _ := e.Encode(msg)
	withDup := []Slice{slices[0], slices[0], slices[1], slices[0], slices[2]}
	got, err := Decode(3, withDup)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("mismatch with duplicates present")
	}
}

func TestSelectIndependentDimensionChecks(t *testing.T) {
	s1 := Slice{Coeff: []byte{1, 2}, Payload: []byte{1}}
	bad := Slice{Coeff: []byte{1}, Payload: []byte{1}}
	if _, err := SelectIndependent(2, []Slice{s1, bad}); err == nil {
		t.Fatal("want dimension error")
	}
	badPay := Slice{Coeff: []byte{3, 4}, Payload: []byte{1, 2}}
	if _, err := SelectIndependent(2, []Slice{s1, badPay}); err == nil {
		t.Fatal("want payload length error")
	}
}

func TestNewEncoderValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ d, dp int }{{0, 1}, {3, 2}, {-1, -1}, {200, 250}}
	for _, c := range cases {
		if _, err := NewEncoder(c.d, c.dp, rng); err == nil {
			t.Fatalf("d=%d dp=%d should be rejected", c.d, c.dp)
		}
	}
	if _, err := NewEncoder(2, 4, nil); err == nil {
		t.Fatal("nil rng should be rejected")
	}
	e, err := NewEncoder(2, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r := e.Redundancy(); r != 2.0 {
		t.Fatalf("redundancy=%v want 2", r)
	}
}

func TestChopUnchopProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(msg []byte, dRaw uint8) bool {
		d := int(dRaw%8) + 1
		got, err := Unchop(Chop(msg, d))
		return err == nil && bytes.Equal(got, msg)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	err := quick.Check(func(msg []byte, dRaw, extraRaw uint8) bool {
		d := int(dRaw%6) + 1
		dp := d + int(extraRaw%4)
		e, err := NewEncoder(d, dp, rng)
		if err != nil {
			return false
		}
		slices, err := e.Encode(msg)
		if err != nil {
			return false
		}
		// Shuffle, decode from a random d-subset.
		rng.Shuffle(len(slices), func(i, j int) { slices[i], slices[j] = slices[j], slices[i] })
		got, err := Decode(d, slices)
		return err == nil && bytes.Equal(got, msg)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecombineRegeneratesRedundancy(t *testing.T) {
	const d, dp = 2, 3
	rng := rand.New(rand.NewSource(31))
	e, _ := NewEncoder(d, dp, rng)
	msg := []byte("network coding regenerates lost redundancy at relays")
	slices, _ := e.Encode(msg)

	// Lose one slice (a failed parent), keep d=2 — enough to decode but no
	// spare. A relay recombines the survivors back into dp=3 fresh slices.
	survivors := slices[:2]
	fresh, err := Recombine(survivors, dp, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != dp {
		t.Fatalf("got %d fresh slices", len(fresh))
	}
	// Now lose ANY one of the fresh slices; decoding must still work with
	// high probability (random coefficients are independent w.h.p.).
	for drop := 0; drop < dp; drop++ {
		var sub []Slice
		for i, s := range fresh {
			if i != drop {
				sub = append(sub, s)
			}
		}
		got, err := Decode(d, sub)
		if err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("drop %d: wrong message", drop)
		}
	}
}

func TestRecombineStaysInSpan(t *testing.T) {
	// Combinations of fewer than d independent slices must never become
	// decodable: rank cannot grow through recombination.
	const d = 4
	rng := rand.New(rand.NewSource(37))
	e, _ := NewEncoder(d, d, rng)
	slices, _ := e.Encode([]byte("span invariant"))
	partial := slices[:2] // rank 2
	fresh, err := Recombine(partial, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := Rank(d, fresh); got > 2 {
		t.Fatalf("recombination increased rank to %d", got)
	}
	if Decodable(d, fresh) {
		t.Fatal("recombined partial slices decodable — pi-security violated")
	}
}

func TestRecombineInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Recombine(nil, 3, rng); err == nil {
		t.Fatal("empty input should error")
	}
	s := []Slice{
		{Coeff: []byte{1, 2}, Payload: []byte{1, 2, 3}},
		{Coeff: []byte{1}, Payload: []byte{1, 2, 3}},
	}
	if _, err := Recombine(s, 1, rng); err == nil {
		t.Fatal("ragged coeffs should error")
	}
}

func TestRankHelper(t *testing.T) {
	if Rank(3, nil) != 0 {
		t.Fatal("rank of no slices should be 0")
	}
	s := Slice{Coeff: []byte{1, 0, 0}, Payload: []byte{5}}
	if Rank(3, []Slice{s, s}) != 1 {
		t.Fatal("duplicate slices should have rank 1")
	}
	if Rank(3, []Slice{{Coeff: []byte{1}, Payload: nil}}) != 0 {
		t.Fatal("wrong-dimension slices should have rank 0")
	}
}

// piSecure checks the operational meaning of Lemma 5.1 on a small message
// space: given d-1 slices, every value of the first message byte remains
// consistent with the observation (there exists a completion), so the
// conditional distribution over that byte is unchanged.
func TestPiSecurityWitness(t *testing.T) {
	const d = 2
	rng := rand.New(rand.NewSource(41))
	a := gf.RandomInvertible(d, rng)
	// Message vector (m0, m1), observe only slice 0: y = a00*m0 + a01*m1.
	// For every candidate value v of m0, show some m1 explains y.
	m := []byte{0x42, 0x99}
	y := gf.Add(gf.Mul(a.At(0, 0), m[0]), gf.Mul(a.At(0, 1), m[1]))
	if a.At(0, 1) == 0 {
		t.Skip("degenerate row; rerun with different seed")
	}
	for v := 0; v < 256; v++ {
		// Solve a01*m1 = y - a00*v.
		rhs := gf.Add(y, gf.Mul(a.At(0, 0), byte(v)))
		m1 := gf.Div(rhs, a.At(0, 1))
		check := gf.Add(gf.Mul(a.At(0, 0), byte(v)), gf.Mul(a.At(0, 1), m1))
		if check != y {
			t.Fatalf("no completion for m0=%d — pi-security broken", v)
		}
	}
}

func TestITEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for d := 2; d <= 5; d++ {
		msg := []byte("information theoretic mode pays d-fold space")
		groups, err := ITEncode(msg, d, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(groups) != d {
			t.Fatalf("d=%d: %d groups", d, len(groups))
		}
		for _, g := range groups {
			if len(g.Slices) != d {
				t.Fatalf("group has %d slices", len(g.Slices))
			}
		}
		got, err := ITDecode(groups, d)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("d=%d: IT round trip mismatch", d)
		}
	}
}

func TestITEncodeRejectsD1(t *testing.T) {
	if _, err := ITEncode([]byte("x"), 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("d=1 should be rejected in IT mode")
	}
}

func TestITDecodeWrongGroupCount(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	groups, _ := ITEncode([]byte("abc"), 3, rng)
	if _, err := ITDecode(groups[:2], 3); err == nil {
		t.Fatal("missing group should fail")
	}
}

// Information-theoretic mode: with one slice missing from a group, every
// candidate first block is consistent — statistical secrecy, not just
// pi-security of the mixed blocks.
func TestITPartialGroupRevealsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const d = 2
	groups, err := ITEncode([]byte{0x7f}, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := groups[0]
	// With only slice 0 of the group, rank is 1 < d: not decodable.
	if Decodable(d, g.Slices[:1]) {
		t.Fatal("single IT slice decodable")
	}
}

func TestSliceClone(t *testing.T) {
	s := Slice{Coeff: []byte{1, 2}, Payload: []byte{3, 4}}
	c := s.Clone()
	c.Coeff[0] = 99
	c.Payload[0] = 99
	if s.Coeff[0] == 99 || s.Payload[0] == 99 {
		t.Fatal("Clone aliases original")
	}
}

func BenchmarkEncode1500(b *testing.B) {
	for _, d := range []int{2, 3, 5, 8} {
		b.Run(benchName("d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(d)))
			e, _ := NewEncoder(d, d, rng)
			msg := make([]byte, 1500)
			rng.Read(msg)
			b.ReportAllocs()
			b.SetBytes(1500)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Encode(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecode1500(b *testing.B) {
	for _, d := range []int{2, 3, 5, 8} {
		b.Run(benchName("d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(d)))
			e, _ := NewEncoder(d, d, rng)
			msg := make([]byte, 1500)
			rng.Read(msg)
			slices, _ := e.Encode(msg)
			b.ReportAllocs()
			b.SetBytes(1500)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(d, slices); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + string(rune('0'+v))
}

// --- Zero-copy pipeline APIs -------------------------------------------------

// EncodeInto must reuse the destination's backing arrays across rounds and
// still produce independently decodable output each time.
func TestEncodeIntoReusesBuffers(t *testing.T) {
	e := newEnc(t, 3, 5, 77)
	msgA := bytes.Repeat([]byte{0xa1}, 900)
	msgB := bytes.Repeat([]byte{0xb2}, 900)

	dst, err := e.EncodeInto(msgA, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := Decode(3, dst)
	if err != nil || !bytes.Equal(gotA, msgA) {
		t.Fatalf("first round decode failed: %v", err)
	}
	p0 := &dst[0].Payload[0]
	dst2, err := e.EncodeInto(msgB, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &dst2[0].Payload[0] != p0 {
		t.Fatal("EncodeInto reallocated despite sufficient capacity")
	}
	gotB, err := Decode(3, dst2)
	if err != nil || !bytes.Equal(gotB, msgB) {
		t.Fatalf("second round decode failed: %v", err)
	}
}

// A shared Encoder must produce slices whose coefficients differ between
// messages (fresh randomness per call, the anonymity invariant).
func TestEncodeIntoFreshCoefficients(t *testing.T) {
	e := newEnc(t, 2, 2, 78)
	a, _ := e.Encode([]byte("one"))
	b, _ := e.Encode([]byte("two"))
	same := true
	for i := range a {
		if !bytes.Equal(a[i].Coeff, b[i].Coeff) {
			same = false
		}
	}
	if same {
		t.Fatal("two encodes drew identical transform matrices")
	}
}

func TestDecoderReuse(t *testing.T) {
	dec, err := NewDecoder(3)
	if err != nil {
		t.Fatal(err)
	}
	e := newEnc(t, 3, 3, 79)
	for round := 0; round < 5; round++ {
		msg := bytes.Repeat([]byte{byte(round)}, 333+round)
		slices, err := e.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(slices)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round %d: mismatch", round)
		}
	}
	// Re-target at a different d.
	if err := dec.Reset(4); err != nil {
		t.Fatal(err)
	}
	e4 := newEnc(t, 4, 4, 80)
	msg := []byte("retargeted decoder")
	slices, _ := e4.Encode(msg)
	got, err := dec.Decode(slices)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("after Reset: %v", err)
	}
}

// Decode results must be caller-owned: decoding a second message must not
// mutate the bytes returned for the first.
func TestDecodeReturnsOwnedBytes(t *testing.T) {
	e := newEnc(t, 2, 2, 81)
	msgA := bytes.Repeat([]byte{0x11}, 500)
	msgB := bytes.Repeat([]byte{0x22}, 500)
	sa, _ := e.Encode(msgA)
	sb, _ := e.Encode(msgB)
	gotA, err := Decode(2, sa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(2, sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, msgA) {
		t.Fatal("second Decode clobbered the first result")
	}
}

func TestRecombineIntoReusesBuffers(t *testing.T) {
	const d = 2
	rng := rand.New(rand.NewSource(83))
	e, _ := NewEncoder(d, d, rng)
	msg := []byte("recombine into reuses buffers")
	slices, _ := e.Encode(msg)

	dst, err := RecombineInto(nil, slices, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(d, dst)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("first recombine decode: %v", err)
	}
	p0 := &dst[0].Payload[0]
	dst2, err := RecombineInto(dst, slices, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if &dst2[0].Payload[0] != p0 {
		t.Fatal("RecombineInto reallocated despite capacity")
	}
	got2, err := Decode(d, dst2)
	if err != nil || !bytes.Equal(got2, msg) {
		t.Fatalf("second recombine decode: %v", err)
	}
}

// --- Allocation-regression benchmarks ---------------------------------------

// The steady-state data path — encode a round into reused slices, frame
// nothing, decode with a held Decoder — must stay allocation-light; these
// benchmarks report allocs/op so a future PR reintroducing per-round garbage
// shows up as a regression.
func BenchmarkEncodeIntoSteadyState(b *testing.B) {
	for _, d := range []int{2, 8} {
		b.Run(benchName("d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(d)))
			e, _ := NewEncoder(d, d, rng)
			msg := make([]byte, 1500)
			rng.Read(msg)
			dst, _ := e.EncodeInto(msg, nil)
			b.SetBytes(1500)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = e.EncodeInto(msg, dst)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecoderSteadyState(b *testing.B) {
	for _, d := range []int{2, 8} {
		b.Run(benchName("d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(d)))
			e, _ := NewEncoder(d, d, rng)
			msg := make([]byte, 1500)
			rng.Read(msg)
			slices, _ := e.Encode(msg)
			dec, _ := NewDecoder(d)
			b.SetBytes(1500)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodeBlocks(slices); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Regression: reusing a dst across messages of growing size must not let a
// slice grow() into its slab neighbor's region — overlapping rows corrupt
// the encoding before the CRC is computed, so nothing downstream catches it.
func TestEncodeIntoGrowingMessages(t *testing.T) {
	e := newEnc(t, 3, 3, 91)
	var dst []Slice
	for _, n := range []int{100, 300, 50, 2000} {
		msg := bytes.Repeat([]byte{byte(n)}, n)
		var err error
		dst, err = e.EncodeInto(msg, dst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(3, dst)
		if err != nil {
			t.Fatalf("len=%d: %v", n, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("len=%d: round trip mismatch (overlapping slab views?)", n)
		}
	}
}
