// Package code implements the coding scheme at the heart of information
// slicing (paper §4.1, §4.4).
//
// A message is chopped into d equal blocks, viewed as a vector over GF(2^8),
// and multiplied by a d'×d transform matrix A' whose every d rows are
// linearly independent (d' == d gives the non-redundant case of Eq. 3,
// d' > d the churn-resilient case of Eq. 4). Each output block, concatenated
// with the matrix row that produced it, is an "information slice". Any d
// slices reconstruct the message; fewer than d reveal nothing (pi-security,
// Lemma 5.1).
//
// Relays may re-randomize slices without decoding (network coding, §4.4.1):
// a random linear combination of received slices — combining both payloads
// and coefficient rows with the same scalars — is a fresh, equally useful
// slice. This is what lets the overlay regenerate redundancy lost to node
// failures in the middle of the network.
//
// Buffer ownership (see DESIGN.md): Encoder and Decoder carry reusable
// scratch and are not safe for concurrent use; the Into-variants write into
// caller-provided storage, while the plain variants return freshly allocated
// results the caller owns. Package-level Decode/Rank/Decodable draw pooled
// workspaces internally and are safe to call from any goroutine.
package code

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"infoslicing/internal/gf"
)

// Slice is one information slice: the row of the transform matrix that
// produced the payload, followed by the encoded payload itself. A slice in
// isolation is indistinguishable from random bytes.
type Slice struct {
	Coeff   []byte // length d, the row A'_i
	Payload []byte
}

// Clone deep-copies a slice.
func (s Slice) Clone() Slice {
	return Slice{
		Coeff:   append([]byte(nil), s.Coeff...),
		Payload: append([]byte(nil), s.Payload...),
	}
}

// Common errors.
var (
	ErrNotEnoughSlices = errors.New("code: fewer than d linearly independent slices")
	ErrInconsistent    = errors.New("code: slices have inconsistent dimensions")
	ErrBadParameters   = errors.New("code: invalid coding parameters")
)

// lenPrefix is the number of bytes used to record the original message
// length before padding.
const lenPrefix = 4

// Encoder slices messages into DPrime coded slices such that any D decode.
// The zero value is not usable; construct with NewEncoder. An Encoder keeps
// reusable scratch (transform matrices, the chop buffer) between calls and
// is therefore NOT safe for concurrent use.
type Encoder struct {
	D      int // number of independent blocks (split factor d, Table 1)
	DPrime int // number of slices emitted (d' ≥ d, §4.4)
	rng    *rand.Rand

	// Reusable scratch. cauchy is the fixed d'×d MDS base (only when
	// d' > d); a receives the per-message transform; mix and work serve the
	// random-invertible sampling.
	cauchy    *gf.Matrix
	a         *gf.Matrix
	mix, work *gf.Matrix
	padded    []byte
	blocks    [][]byte
	payloads  [][]byte
}

// NewEncoder returns an encoder with split factor d emitting dprime slices.
// dprime == d reproduces Eq. 3 (all slices required); dprime > d adds
// (dprime-d)/d redundancy per Eq. 4.
func NewEncoder(d, dprime int, rng *rand.Rand) (*Encoder, error) {
	if d < 1 || dprime < d || dprime >= gf.Order-d {
		return nil, fmt.Errorf("%w: d=%d d'=%d", ErrBadParameters, d, dprime)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadParameters)
	}
	e := &Encoder{
		D: d, DPrime: dprime, rng: rng,
		a:        gf.NewMatrix(dprime, d),
		mix:      gf.NewMatrix(d, d),
		work:     gf.NewMatrix(d, d),
		blocks:   make([][]byte, d),
		payloads: make([][]byte, dprime),
	}
	if dprime > d {
		e.cauchy = gf.Cauchy(dprime, d)
	}
	return e, nil
}

// Redundancy returns the added redundancy R = (d'-d)/d (§4.4, §8.1).
func (e *Encoder) Redundancy() float64 {
	return float64(e.DPrime-e.D) / float64(e.D)
}

// Encode slices msg into e.DPrime freshly allocated slices. The message is
// length-prefixed and zero-padded to a multiple of e.D, so arbitrary lengths
// round-trip.
func (e *Encoder) Encode(msg []byte) ([]Slice, error) {
	return e.EncodeInto(msg, nil)
}

// EncodeInto is Encode writing into dst: each dst slice's Coeff and Payload
// backing arrays are reused when they have capacity, so a caller cycling the
// same dst through consecutive rounds encodes without per-round garbage.
// Passing nil dst allocates fresh slices (one coefficient slab, one payload
// slab). The returned slices are valid until the next EncodeInto with the
// same dst; the Encoder keeps no references to them.
func (e *Encoder) EncodeInto(msg []byte, dst []Slice) ([]Slice, error) {
	blockLen := e.chop(msg)
	e.fillTransform()

	if cap(dst) >= e.DPrime {
		dst = dst[:e.DPrime]
	} else {
		dst = make([]Slice, e.DPrime)
		coeffs := make([]byte, e.DPrime*e.D)
		pays := make([]byte, e.DPrime*blockLen)
		for i := range dst {
			// Full slice expressions cap each view at its own segment:
			// without them a later, larger message would grow() a slice into
			// its neighbor's slab region and the rows would overlap.
			dst[i].Coeff = coeffs[i*e.D : (i+1)*e.D : (i+1)*e.D]
			dst[i].Payload = pays[i*blockLen : (i+1)*blockLen : (i+1)*blockLen]
		}
	}
	for i := range dst {
		dst[i].Coeff = grow(dst[i].Coeff, e.D)
		copy(dst[i].Coeff, e.a.Row(i))
		dst[i].Payload = grow(dst[i].Payload, blockLen)
		e.payloads[i] = dst[i].Payload
	}
	e.a.MulBlocksInto(e.blocks, e.payloads)
	return dst, nil
}

// chop length-prefixes and zero-pads msg into the encoder's scratch buffer
// and points e.blocks at the d equal segments. Returns the block length.
func (e *Encoder) chop(msg []byte) int {
	total := lenPrefix + len(msg)
	blockLen := (total + e.D - 1) / e.D
	if blockLen == 0 {
		blockLen = 1
	}
	padded := grow(e.padded, blockLen*e.D)
	e.padded = padded
	binary.BigEndian.PutUint32(padded, uint32(len(msg)))
	copy(padded[lenPrefix:], msg)
	clear(padded[total:])
	for i := 0; i < e.D; i++ {
		e.blocks[i] = padded[i*blockLen : (i+1)*blockLen]
	}
	return blockLen
}

// fillTransform samples the per-message transform matrix into e.a: a random
// invertible d×d matrix when d' == d, otherwise the cached Cauchy base mixed
// by a random invertible d×d matrix (preserving the MDS property).
func (e *Encoder) fillTransform() {
	if e.DPrime == e.D {
		e.a.Reshape(e.D, e.D)
		e.a.FillRandomInvertible(e.work, e.rng)
		return
	}
	e.mix.FillRandomInvertible(e.work, e.rng)
	e.cauchy.MulInto(e.mix, e.a)
}

// grow returns b resized to n bytes, reusing its backing array when
// possible.
func grow(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// Chop length-prefixes and zero-pads msg, then splits it into d equal blocks
// (the ~m vector of Eq. 3). Exposed for callers that apply their own
// transform matrix.
func Chop(msg []byte, d int) [][]byte {
	padded := make([]byte, lenPrefix+len(msg))
	binary.BigEndian.PutUint32(padded, uint32(len(msg)))
	copy(padded[lenPrefix:], msg)
	blockLen := (len(padded) + d - 1) / d
	if blockLen == 0 {
		blockLen = 1
	}
	padded = append(padded, make([]byte, blockLen*d-len(padded))...)
	blocks := make([][]byte, d)
	for i := range blocks {
		blocks[i] = padded[i*blockLen : (i+1)*blockLen]
	}
	return blocks
}

// Unchop reverses Chop: concatenates blocks and strips the length prefix.
func Unchop(blocks [][]byte) ([]byte, error) {
	var joined []byte
	for _, b := range blocks {
		joined = append(joined, b...)
	}
	if len(joined) < lenPrefix {
		return nil, ErrInconsistent
	}
	n := binary.BigEndian.Uint32(joined)
	if int(n) > len(joined)-lenPrefix {
		return nil, fmt.Errorf("code: corrupt length prefix %d > %d", n, len(joined)-lenPrefix)
	}
	return joined[lenPrefix : lenPrefix+int(n)], nil
}

// Decoder reconstructs messages from slices, keeping every workspace the
// reconstruction needs — the selection echelon, the coefficient matrix, the
// Gauss-Jordan scratch, the block assembly buffer — alive between calls.
// Not safe for concurrent use; the package-level Decode draws Decoders from
// a pool.
type Decoder struct {
	d            int
	elim         *gf.Matrix // incremental row-echelon workspace for selection
	sel          []Slice
	a, inv, work *gf.Matrix
	joined       []byte
	blocks       [][]byte
	pay          [][]byte
}

// NewDecoder returns a decoder for split factor d.
func NewDecoder(d int) (*Decoder, error) {
	if d < 1 {
		return nil, ErrBadParameters
	}
	return &Decoder{
		d:    d,
		elim: gf.NewMatrix(d, d),
		sel:  make([]Slice, 0, d),
		a:    gf.NewMatrix(d, d),
		inv:  gf.NewMatrix(d, d),
		work: gf.NewMatrix(d, d),
	}, nil
}

// Reset re-targets the decoder at a (possibly different) split factor.
func (dec *Decoder) Reset(d int) error {
	if d < 1 {
		return ErrBadParameters
	}
	dec.d = d
	dec.elim.Reshape(d, d)
	dec.a.Reshape(d, d)
	return nil
}

// Decode reconstructs the original message from any d linearly independent
// slices. The returned bytes are freshly allocated and owned by the caller.
func (dec *Decoder) Decode(slices []Slice) ([]byte, error) {
	blockLen, err := dec.decodeBlocks(slices)
	if err != nil {
		return nil, err
	}
	joined := dec.joined[:dec.d*blockLen]
	if len(joined) < lenPrefix {
		return nil, ErrInconsistent
	}
	n := binary.BigEndian.Uint32(joined)
	if int(n) > len(joined)-lenPrefix {
		return nil, fmt.Errorf("code: corrupt length prefix %d > %d", n, len(joined)-lenPrefix)
	}
	return append([]byte(nil), joined[lenPrefix:lenPrefix+int(n)]...), nil
}

// DecodeBlocks recovers the d raw blocks without interpreting padding. The
// returned blocks are views into the decoder's scratch, valid until the next
// call.
func (dec *Decoder) DecodeBlocks(slices []Slice) ([][]byte, error) {
	if _, err := dec.decodeBlocks(slices); err != nil {
		return nil, err
	}
	return dec.blocks, nil
}

// decodeBlocks selects d independent slices, inverts their coefficient
// matrix using the decoder's workspaces, and multiplies the payloads into
// dec.joined / dec.blocks. Returns the block length.
func (dec *Decoder) decodeBlocks(slices []Slice) (int, error) {
	sel, err := dec.selectIndependent(slices)
	if err != nil {
		return 0, err
	}
	d := dec.d
	for i, s := range sel {
		copy(dec.a.Row(i), s.Coeff)
	}
	if err := dec.a.InverseInto(dec.work, dec.inv); err != nil {
		// selectIndependent guarantees full rank; reaching here means the
		// caller mutated slices concurrently.
		return 0, fmt.Errorf("code: %w", err)
	}
	blockLen := len(sel[0].Payload)
	dec.joined = grow(dec.joined, d*blockLen)
	if cap(dec.blocks) < d {
		dec.blocks = make([][]byte, d)
	}
	dec.blocks = dec.blocks[:d]
	dec.pay = dec.pay[:0]
	for _, s := range sel {
		dec.pay = append(dec.pay, s.Payload)
	}
	for i := 0; i < d; i++ {
		dec.blocks[i] = dec.joined[i*blockLen : (i+1)*blockLen]
	}
	dec.inv.MulBlocksInto(dec.pay, dec.blocks)
	return blockLen, nil
}

// selectIndependent greedily picks d slices with linearly independent
// coefficient rows by incremental Gaussian elimination against dec.elim:
// each candidate row is reduced by the pivots accepted so far and kept iff a
// non-zero pivot survives. O(d²) per candidate, no allocation.
func (dec *Decoder) selectIndependent(slices []Slice) ([]Slice, error) {
	d := dec.d
	dec.sel = dec.sel[:0]
	elim := dec.elim.Reshape(d, d)
	payloadLen := -1
	for i := range slices {
		s := &slices[i]
		if len(s.Coeff) != d {
			return nil, fmt.Errorf("%w: coeff len %d want %d", ErrInconsistent, len(s.Coeff), d)
		}
		if payloadLen == -1 {
			payloadLen = len(s.Payload)
		} else if len(s.Payload) != payloadLen {
			return nil, fmt.Errorf("%w: payload len %d want %d", ErrInconsistent, len(s.Payload), payloadLen)
		}
		r := len(dec.sel)
		row := elim.Row(r)
		copy(row, s.Coeff)
		if reduceRow(elim, row, r) {
			dec.sel = append(dec.sel, *s)
			if len(dec.sel) == d {
				return dec.sel, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: have %d of %d", ErrNotEnoughSlices, len(dec.sel), d)
}

// reduceRow eliminates row against the first r echelon rows of elim (each of
// which has its pivot normalized to 1), then normalizes row's own leading
// coefficient. Reports whether the row is independent of the span.
func reduceRow(elim *gf.Matrix, row []byte, r int) bool {
	for k := 0; k < r; k++ {
		prev := elim.Row(k)
		lead := leadingCol(prev)
		if c := row[lead]; c != 0 {
			gf.MulSlice(c, prev, row)
		}
	}
	lead := leadingCol(row)
	if lead < 0 {
		return false
	}
	if p := row[lead]; p != 1 {
		gf.MulSliceAssign(gf.Inv(p), row, row)
	}
	return true
}

func leadingCol(row []byte) int {
	for j, v := range row {
		if v != 0 {
			return j
		}
	}
	return -1
}

// decoderPool recycles Decoders for the package-level helpers so hot callers
// (relays decode every round) get workspace reuse without holding their own
// Decoder.
var decoderPool = sync.Pool{
	New: func() any {
		dec, _ := NewDecoder(1)
		return dec
	},
}

// Decode reconstructs the original message from any d linearly independent
// slices (paper: ~m = A^-1 ~I*). Extra or linearly dependent slices are
// tolerated and skipped. The returned bytes are owned by the caller.
func Decode(d int, slices []Slice) ([]byte, error) {
	if d < 1 {
		return nil, ErrBadParameters
	}
	dec := decoderPool.Get().(*Decoder)
	defer decoderPool.Put(dec)
	if err := dec.Reset(d); err != nil {
		return nil, err
	}
	return dec.Decode(slices)
}

// DecodeBlocks recovers the d raw blocks without interpreting padding. Used
// by the data plane, where the source applies Chop once per message. The
// returned blocks are freshly allocated.
func DecodeBlocks(d int, slices []Slice) ([][]byte, error) {
	if d < 1 {
		return nil, ErrBadParameters
	}
	dec := decoderPool.Get().(*Decoder)
	defer decoderPool.Put(dec)
	if err := dec.Reset(d); err != nil {
		return nil, err
	}
	views, err := dec.DecodeBlocks(slices)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(views))
	for i, v := range views {
		out[i] = append([]byte(nil), v...)
	}
	return out, nil
}

// SelectIndependent returns d slices whose coefficient rows are linearly
// independent, greedily scanning the input. It validates dimensions as it
// goes.
func SelectIndependent(d int, slices []Slice) ([]Slice, error) {
	if d < 1 {
		return nil, ErrBadParameters
	}
	dec := decoderPool.Get().(*Decoder)
	defer decoderPool.Put(dec)
	if err := dec.Reset(d); err != nil {
		return nil, err
	}
	sel, err := dec.selectIndependent(slices)
	if err != nil {
		return nil, err
	}
	return append([]Slice(nil), sel...), nil
}

// Rank returns the rank of the coefficient matrix spanned by the slices —
// how many degrees of freedom a holder of these slices has (d means
// decodable).
func Rank(d int, slices []Slice) int {
	if len(slices) == 0 || d < 1 {
		return 0
	}
	for i := range slices {
		if len(slices[i].Coeff) != d {
			return 0
		}
	}
	dec := decoderPool.Get().(*Decoder)
	defer decoderPool.Put(dec)
	if err := dec.Reset(d); err != nil {
		return 0
	}
	elim := dec.elim
	rank := 0
	for i := range slices {
		if rank == d {
			break
		}
		row := elim.Row(rank)
		copy(row, slices[i].Coeff)
		if reduceRow(elim, row, rank) {
			rank++
		}
	}
	return rank
}

// Decodable reports whether the slices suffice to reconstruct the message.
func Decodable(d int, slices []Slice) bool { return Rank(d, slices) >= d }

// Recombine implements the network-coding regeneration step of §4.4.1:
// it produces count fresh slices, each a random linear combination
// m'_new = Σ p_i m'_i with matching coefficient row A'_new = Σ p_i A'_i.
// The inputs must share coefficient and payload lengths. If the inputs span
// rank r, each output lies in the same span, so a downstream node that
// gathers d independent combinations can still decode.
func Recombine(slices []Slice, count int, rng *rand.Rand) ([]Slice, error) {
	return RecombineInto(nil, slices, count, rng)
}

// RecombineInto is Recombine writing into dst, reusing each dst slice's
// backing arrays when they have capacity (relays regenerate per missing
// child per round; this keeps that path allocation-free).
func RecombineInto(dst []Slice, slices []Slice, count int, rng *rand.Rand) ([]Slice, error) {
	if len(slices) == 0 {
		return nil, ErrNotEnoughSlices
	}
	d := len(slices[0].Coeff)
	plen := len(slices[0].Payload)
	for _, s := range slices {
		if len(s.Coeff) != d || len(s.Payload) != plen {
			return nil, ErrInconsistent
		}
	}
	if cap(dst) >= count {
		dst = dst[:count]
	} else {
		dst = make([]Slice, count)
	}
	for k := 0; k < count; k++ {
		coeff := grow(dst[k].Coeff, d)
		payload := grow(dst[k].Payload, plen)
		for {
			clear(coeff)
			clear(payload)
			nonzero := false
			for i := range slices {
				p := byte(rng.Intn(gf.Order))
				if p != 0 {
					nonzero = true
				}
				gf.MulSlice(p, slices[i].Coeff, coeff)
				gf.MulSlice(p, slices[i].Payload, payload)
			}
			if nonzero {
				break
			}
			// All-zero combination is useless; resample (vanishingly rare).
		}
		dst[k] = Slice{Coeff: coeff, Payload: payload}
	}
	return dst, nil
}
