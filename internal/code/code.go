// Package code implements the coding scheme at the heart of information
// slicing (paper §4.1, §4.4).
//
// A message is chopped into d equal blocks, viewed as a vector over GF(2^8),
// and multiplied by a d'×d transform matrix A' whose every d rows are
// linearly independent (d' == d gives the non-redundant case of Eq. 3,
// d' > d the churn-resilient case of Eq. 4). Each output block, concatenated
// with the matrix row that produced it, is an "information slice". Any d
// slices reconstruct the message; fewer than d reveal nothing (pi-security,
// Lemma 5.1).
//
// Relays may re-randomize slices without decoding (network coding, §4.4.1):
// a random linear combination of received slices — combining both payloads
// and coefficient rows with the same scalars — is a fresh, equally useful
// slice. This is what lets the overlay regenerate redundancy lost to node
// failures in the middle of the network.
package code

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"infoslicing/internal/gf"
)

// Slice is one information slice: the row of the transform matrix that
// produced the payload, followed by the encoded payload itself. A slice in
// isolation is indistinguishable from random bytes.
type Slice struct {
	Coeff   []byte // length d, the row A'_i
	Payload []byte
}

// Clone deep-copies a slice.
func (s Slice) Clone() Slice {
	return Slice{
		Coeff:   append([]byte(nil), s.Coeff...),
		Payload: append([]byte(nil), s.Payload...),
	}
}

// Common errors.
var (
	ErrNotEnoughSlices = errors.New("code: fewer than d linearly independent slices")
	ErrInconsistent    = errors.New("code: slices have inconsistent dimensions")
	ErrBadParameters   = errors.New("code: invalid coding parameters")
)

// lenPrefix is the number of bytes used to record the original message
// length before padding.
const lenPrefix = 4

// Encoder slices messages into DPrime coded slices such that any D decode.
// The zero value is not usable; construct with NewEncoder.
type Encoder struct {
	D      int // number of independent blocks (split factor d, Table 1)
	DPrime int // number of slices emitted (d' ≥ d, §4.4)
	rng    *rand.Rand
}

// NewEncoder returns an encoder with split factor d emitting dprime slices.
// dprime == d reproduces Eq. 3 (all slices required); dprime > d adds
// (dprime-d)/d redundancy per Eq. 4.
func NewEncoder(d, dprime int, rng *rand.Rand) (*Encoder, error) {
	if d < 1 || dprime < d || dprime >= gf.Order-d {
		return nil, fmt.Errorf("%w: d=%d d'=%d", ErrBadParameters, d, dprime)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadParameters)
	}
	return &Encoder{D: d, DPrime: dprime, rng: rng}, nil
}

// Redundancy returns the added redundancy R = (d'-d)/d (§4.4, §8.1).
func (e *Encoder) Redundancy() float64 {
	return float64(e.DPrime-e.D) / float64(e.D)
}

// Encode slices msg into e.DPrime slices. The message is length-prefixed and
// zero-padded to a multiple of e.D, so arbitrary lengths round-trip.
func (e *Encoder) Encode(msg []byte) ([]Slice, error) {
	blocks := Chop(msg, e.D)
	a := gf.RandomMDS(e.DPrime, e.D, e.rng)
	payloads := a.MulBlocks(blocks)
	out := make([]Slice, e.DPrime)
	for i := range out {
		out[i] = Slice{
			Coeff:   append([]byte(nil), a.Row(i)...),
			Payload: payloads[i],
		}
	}
	return out, nil
}

// Chop length-prefixes and zero-pads msg, then splits it into d equal blocks
// (the ~m vector of Eq. 3). Exposed for callers that apply their own
// transform matrix.
func Chop(msg []byte, d int) [][]byte {
	padded := make([]byte, lenPrefix+len(msg))
	binary.BigEndian.PutUint32(padded, uint32(len(msg)))
	copy(padded[lenPrefix:], msg)
	blockLen := (len(padded) + d - 1) / d
	if blockLen == 0 {
		blockLen = 1
	}
	padded = append(padded, make([]byte, blockLen*d-len(padded))...)
	blocks := make([][]byte, d)
	for i := range blocks {
		blocks[i] = padded[i*blockLen : (i+1)*blockLen]
	}
	return blocks
}

// Unchop reverses Chop: concatenates blocks and strips the length prefix.
func Unchop(blocks [][]byte) ([]byte, error) {
	var joined []byte
	for _, b := range blocks {
		joined = append(joined, b...)
	}
	if len(joined) < lenPrefix {
		return nil, ErrInconsistent
	}
	n := binary.BigEndian.Uint32(joined)
	if int(n) > len(joined)-lenPrefix {
		return nil, fmt.Errorf("code: corrupt length prefix %d > %d", n, len(joined)-lenPrefix)
	}
	return joined[lenPrefix : lenPrefix+int(n)], nil
}

// Decode reconstructs the original message from any d linearly independent
// slices (paper: ~m = A^-1 ~I*). Extra or linearly dependent slices are
// tolerated and skipped.
func Decode(d int, slices []Slice) ([]byte, error) {
	blocks, err := DecodeBlocks(d, slices)
	if err != nil {
		return nil, err
	}
	return Unchop(blocks)
}

// DecodeBlocks recovers the d raw blocks without interpreting padding. Used
// by the data plane, where the source applies Chop once per message.
func DecodeBlocks(d int, slices []Slice) ([][]byte, error) {
	sel, err := SelectIndependent(d, slices)
	if err != nil {
		return nil, err
	}
	rows := make([][]byte, d)
	payloads := make([][]byte, d)
	for i, s := range sel {
		rows[i] = s.Coeff
		payloads[i] = s.Payload
	}
	a := gf.MatrixFromRows(rows)
	inv, err := a.Inverse()
	if err != nil {
		// SelectIndependent guarantees full rank; reaching here means the
		// caller mutated slices concurrently.
		return nil, fmt.Errorf("code: %w", err)
	}
	return inv.MulBlocks(payloads), nil
}

// SelectIndependent returns d slices whose coefficient rows are linearly
// independent, greedily scanning the input. It validates dimensions as it
// goes.
func SelectIndependent(d int, slices []Slice) ([]Slice, error) {
	if d < 1 {
		return nil, ErrBadParameters
	}
	var sel []Slice
	var payloadLen = -1
	for _, s := range slices {
		if len(s.Coeff) != d {
			return nil, fmt.Errorf("%w: coeff len %d want %d", ErrInconsistent, len(s.Coeff), d)
		}
		if payloadLen == -1 {
			payloadLen = len(s.Payload)
		} else if len(s.Payload) != payloadLen {
			return nil, fmt.Errorf("%w: payload len %d want %d", ErrInconsistent, len(s.Payload), payloadLen)
		}
		cand := append(sel, s)
		rows := make([][]byte, len(cand))
		for i, c := range cand {
			rows[i] = c.Coeff
		}
		if gf.MatrixFromRows(rows).Rank() == len(cand) {
			sel = cand
		}
		if len(sel) == d {
			return sel, nil
		}
	}
	return nil, fmt.Errorf("%w: have %d of %d", ErrNotEnoughSlices, len(sel), d)
}

// Rank returns the rank of the coefficient matrix spanned by the slices —
// how many degrees of freedom a holder of these slices has (d means
// decodable).
func Rank(d int, slices []Slice) int {
	if len(slices) == 0 {
		return 0
	}
	rows := make([][]byte, 0, len(slices))
	for _, s := range slices {
		if len(s.Coeff) != d {
			return 0
		}
		rows = append(rows, s.Coeff)
	}
	return gf.MatrixFromRows(rows).Rank()
}

// Decodable reports whether the slices suffice to reconstruct the message.
func Decodable(d int, slices []Slice) bool { return Rank(d, slices) >= d }

// Recombine implements the network-coding regeneration step of §4.4.1:
// it produces count fresh slices, each a random linear combination
// m'_new = Σ p_i m'_i with matching coefficient row A'_new = Σ p_i A'_i.
// The inputs must share coefficient and payload lengths. If the inputs span
// rank r, each output lies in the same span, so a downstream node that
// gathers d independent combinations can still decode.
func Recombine(slices []Slice, count int, rng *rand.Rand) ([]Slice, error) {
	if len(slices) == 0 {
		return nil, ErrNotEnoughSlices
	}
	d := len(slices[0].Coeff)
	plen := len(slices[0].Payload)
	for _, s := range slices {
		if len(s.Coeff) != d || len(s.Payload) != plen {
			return nil, ErrInconsistent
		}
	}
	out := make([]Slice, count)
	for k := 0; k < count; k++ {
		coeff := make([]byte, d)
		payload := make([]byte, plen)
		for {
			nonzero := false
			for i := range slices {
				p := byte(rng.Intn(gf.Order))
				if p != 0 {
					nonzero = true
				}
				gf.MulSlice(p, slices[i].Coeff, coeff)
				gf.MulSlice(p, slices[i].Payload, payload)
			}
			if nonzero {
				break
			}
			// All-zero combination is useless; resample (vanishingly rare).
			for i := range coeff {
				coeff[i] = 0
			}
			for i := range payload {
				payload[i] = 0
			}
		}
		out[k] = Slice{Coeff: coeff, Payload: payload}
	}
	return out, nil
}
