// Command benchguard gates performance regressions in CI: it parses `go
// test -bench` output and fails (exit 1) when a benchmark named in the
// committed baseline regresses — or is missing from the run entirely, so a
// renamed benchmark cannot silently drop out of the gate.
//
//	go test -run '^$' -bench '...' -benchtime 200x ./... | tee bench.out
//	go run ./cmd/benchguard -baseline bench_baseline.json bench.out
//
// Two kinds of gates, held in the same baseline file:
//
//   - allocs_per_op: hard ceilings. allocs/op is deterministic for a fixed
//     -benchtime, so these compare exactly and are meaningful on noisy
//     shared CI runners.
//   - ns_per_op: time ceilings with a tolerance (ns_tolerance_pct, default
//     50%). Wall time on shared runners is noisy, so the gate only trips on
//     a regression larger than the tolerance; when -count > 1, the BEST run
//     is compared (noise only slows benchmarks down, never speeds them up).
//
// Run with -update to rewrite both maps from the measured values after an
// intentional change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed performance contract, one entry per gated
// benchmark (sub-benchmark names included, GOMAXPROCS suffix stripped).
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// AllocsPerOp maps benchmark name to the maximum allowed allocs/op.
	AllocsPerOp map[string]int64 `json:"allocs_per_op"`
	// NsPerOp maps benchmark name to the baseline ns/op; a run fails when
	// it measures more than baseline*(1+NsTolerancePct/100).
	NsPerOp map[string]int64 `json:"ns_per_op,omitempty"`
	// NsTolerancePct is the allowed ns/op regression in percent (0 → 50).
	NsTolerancePct float64 `json:"ns_tolerance_pct,omitempty"`
}

// measured holds one benchmark's parsed results across a run.
type measured struct {
	allocs    int64
	hasAllocs bool
	ns        float64
	hasNs     bool
}

// procSuffix strips the -GOMAXPROCS tail go test appends on multi-core
// machines (BenchmarkX/sub-8 → BenchmarkX/sub).
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "baseline JSON path")
	update := flag.Bool("update", false, "rewrite the baseline from measured values instead of gating")
	prune := flag.Bool("prune", false, "with -update, drop baseline entries matching no benchmark in the run")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("open bench output: %v", err)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		fatalf("parse bench output: %v", err)
	}
	if len(results) == 0 {
		fatalf("no benchmark result lines found (did the bench run crash?)")
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline: %v", err)
	}

	if *update {
		updateBaseline(&base, results, *prune)
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fatalf("marshal baseline: %v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatalf("write baseline: %v", err)
		}
		fmt.Printf("benchguard: baseline %s updated (%d alloc gates, %d time gates)\n",
			*baselinePath, len(base.AllocsPerOp), len(base.NsPerOp))
		return
	}

	failed, missing := gateAllocs(&base, results)
	nsFailed, nsMissing := gateNs(&base, results)
	failed += nsFailed
	missing = append(missing, nsMissing...)

	if len(missing) > 0 {
		// A benchmark that disappears from the run is a gate silently
		// switching off — usually a rename, a deleted sub-benchmark, or the
		// bench invocation no longer matching it. Spell out exactly what is
		// gone so the fix (update the -bench pattern, or rename/remove the
		// entry in the baseline) is obvious from the CI log alone.
		sort.Strings(missing)
		fmt.Fprintf(os.Stderr,
			"benchguard: %d baseline benchmark(s) missing from this run:\n", len(missing))
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "benchguard:   - %s\n", name)
		}
		fmt.Fprintf(os.Stderr,
			"benchguard: renamed or deleted benchmarks must be updated in %s (and in the -bench pattern that produced this run)\n",
			*baselinePath)
	}
	total := len(base.AllocsPerOp) + len(base.NsPerOp)
	if failed > 0 {
		fatalf("%d of %d gated benchmarks regressed or went missing", failed, total)
	}
	fmt.Printf("benchguard: all %d gated benchmarks within baseline\n", total)
}

func updateBaseline(base *Baseline, results map[string]measured, prune bool) {
	var stale []string
	for name := range base.AllocsPerOp {
		got, ok := results[name]
		if !ok || !got.hasAllocs {
			stale = append(stale, name)
			continue
		}
		base.AllocsPerOp[name] = got.allocs
	}
	for name := range base.NsPerOp {
		got, ok := results[name]
		if !ok || !got.hasNs {
			stale = append(stale, name)
			continue
		}
		base.NsPerOp[name] = int64(math.Round(got.ns))
	}
	sort.Strings(stale)
	for _, name := range stale {
		if prune {
			// A name may be stale in one map and live in the other; only the
			// stale side is dropped.
			if got, ok := results[name]; !ok || !got.hasAllocs {
				delete(base.AllocsPerOp, name)
			}
			if got, ok := results[name]; !ok || !got.hasNs {
				delete(base.NsPerOp, name)
			}
			fmt.Printf("benchguard: pruned stale entry %q (matches no benchmark in this run)\n", name)
		} else {
			fmt.Fprintf(os.Stderr,
				"benchguard: warning: baseline entry %q matches no benchmark in this run; kept as-is (use -update -prune to drop it)\n", name)
		}
	}
}

func gateAllocs(base *Baseline, results map[string]measured) (failed int, missing []string) {
	names := make([]string, 0, len(base.AllocsPerOp))
	for name := range base.AllocsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		allowed := base.AllocsPerOp[name]
		got, ok := results[name]
		switch {
		case !ok || !got.hasAllocs:
			fmt.Printf("MISSING  %-55s baseline %4d allocs/op, not measured\n", name, allowed)
			missing = append(missing, name)
			failed++
		case got.allocs > allowed:
			fmt.Printf("FAIL     %-55s baseline %4d, got %4d allocs/op\n", name, allowed, got.allocs)
			failed++
		default:
			fmt.Printf("ok       %-55s baseline %4d, got %4d allocs/op\n", name, allowed, got.allocs)
		}
	}
	return failed, missing
}

func gateNs(base *Baseline, results map[string]measured) (failed int, missing []string) {
	tol := base.NsTolerancePct
	if tol <= 0 {
		tol = 50
	}
	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		allowed := base.NsPerOp[name]
		limit := float64(allowed) * (1 + tol/100)
		got, ok := results[name]
		switch {
		case !ok || !got.hasNs:
			fmt.Printf("MISSING  %-55s baseline %6d ns/op, not measured\n", name, allowed)
			missing = append(missing, name)
			failed++
		case got.ns > limit:
			fmt.Printf("FAIL     %-55s baseline %6d ns/op (+%.0f%% = %.0f), got %.0f ns/op\n",
				name, allowed, tol, limit, got.ns)
			failed++
		default:
			fmt.Printf("ok       %-55s baseline %6d ns/op (+%.0f%%), got %.0f ns/op\n",
				name, allowed, tol, got.ns)
		}
	}
	return failed, missing
}

// parseBench extracts allocs/op and ns/op per benchmark name from go test
// -bench output. A name measured more than once (e.g. -count > 1) keeps
// its worst allocs/op but its best ns/op: allocation counts are
// deterministic so any excess is real, while timing noise on shared
// runners only ever slows a run down.
func parseBench(r io.Reader) (map[string]measured, error) {
	out := make(map[string]measured)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		m := out[name]
		for i := 2; i < len(fields); i++ {
			switch fields[i] {
			case "allocs/op":
				v, err := strconv.ParseInt(fields[i-1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("line %q: bad allocs/op %q", sc.Text(), fields[i-1])
				}
				if !m.hasAllocs || v > m.allocs {
					m.allocs = v
				}
				m.hasAllocs = true
			case "ns/op":
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("line %q: bad ns/op %q", sc.Text(), fields[i-1])
				}
				if !m.hasNs || v < m.ns {
					m.ns = v
				}
				m.hasNs = true
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
