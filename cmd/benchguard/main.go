// Command benchguard gates allocation regressions in CI: it parses `go
// test -bench` output, extracts allocs/op for every benchmark, and fails
// (exit 1) if any benchmark named in the committed baseline allocates more
// than the baseline allows — or is missing from the run entirely, so a
// renamed benchmark cannot silently drop out of the gate.
//
//	go test -run '^$' -bench '...' -benchtime 200x ./... | tee bench.out
//	go run ./cmd/benchguard -baseline bench_baseline.json bench.out
//
// Allocation counts are compared, not nanoseconds: allocs/op is
// deterministic for a fixed -benchtime, so the gate is meaningful on noisy
// shared CI runners where timing is not. Run with -update to rewrite the
// baseline from the measured values after an intentional change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed allocation contract, one entry per gated
// benchmark (sub-benchmark names included, GOMAXPROCS suffix stripped).
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// AllocsPerOp maps benchmark name to the maximum allowed allocs/op.
	AllocsPerOp map[string]int64 `json:"allocs_per_op"`
}

// procSuffix strips the -GOMAXPROCS tail go test appends on multi-core
// machines (BenchmarkX/sub-8 → BenchmarkX/sub).
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "baseline JSON path")
	update := flag.Bool("update", false, "rewrite the baseline from measured values instead of gating")
	prune := flag.Bool("prune", false, "with -update, drop baseline entries matching no benchmark in the run")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("open bench output: %v", err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fatalf("parse bench output: %v", err)
	}
	if len(measured) == 0 {
		fatalf("no benchmark lines with allocs/op found (did the bench run crash?)")
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline: %v", err)
	}

	if *update {
		var stale []string
		for name := range base.AllocsPerOp {
			got, ok := measured[name]
			if !ok {
				// A baseline entry no benchmark produced anymore: a rename or
				// deletion. Keep (and warn) by default so a narrow -bench
				// pattern cannot eat the baseline; -prune drops it.
				stale = append(stale, name)
				continue
			}
			base.AllocsPerOp[name] = got
		}
		sort.Strings(stale)
		for _, name := range stale {
			if *prune {
				delete(base.AllocsPerOp, name)
				fmt.Printf("benchguard: pruned stale entry %q (matches no benchmark in this run)\n", name)
			} else {
				fmt.Fprintf(os.Stderr,
					"benchguard: warning: baseline entry %q matches no benchmark in this run; kept as-is (use -update -prune to drop it)\n", name)
			}
		}
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fatalf("marshal baseline: %v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatalf("write baseline: %v", err)
		}
		fmt.Printf("benchguard: baseline %s updated (%d benchmarks)\n", *baselinePath, len(base.AllocsPerOp))
		return
	}

	names := make([]string, 0, len(base.AllocsPerOp))
	for name := range base.AllocsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	var missing []string
	for _, name := range names {
		allowed := base.AllocsPerOp[name]
		got, ok := measured[name]
		switch {
		case !ok:
			fmt.Printf("MISSING  %-55s baseline %4d, not measured\n", name, allowed)
			missing = append(missing, name)
			failed++
		case got > allowed:
			fmt.Printf("FAIL     %-55s baseline %4d, got %4d allocs/op\n", name, allowed, got)
			failed++
		default:
			fmt.Printf("ok       %-55s baseline %4d, got %4d allocs/op\n", name, allowed, got)
		}
	}
	if len(missing) > 0 {
		// A benchmark that disappears from the run is a gate silently
		// switching off — usually a rename, a deleted sub-benchmark, or the
		// bench invocation no longer matching it. Spell out exactly what is
		// gone so the fix (update the -bench pattern, or rename/remove the
		// entry in the baseline) is obvious from the CI log alone.
		fmt.Fprintf(os.Stderr,
			"benchguard: %d baseline benchmark(s) missing from this run:\n", len(missing))
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "benchguard:   - %s\n", name)
		}
		fmt.Fprintf(os.Stderr,
			"benchguard: renamed or deleted benchmarks must be updated in %s (and in the -bench pattern that produced this run)\n",
			*baselinePath)
	}
	if failed > 0 {
		fatalf("%d of %d gated benchmarks regressed or went missing", failed, len(names))
	}
	fmt.Printf("benchguard: all %d gated benchmarks within baseline\n", len(names))
}

// parseBench extracts allocs/op per benchmark name from go test -bench
// output. A name measured more than once (e.g. -count > 1) keeps its worst
// result.
func parseBench(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		for i := 2; i < len(fields); i++ {
			if fields[i] != "allocs/op" {
				continue
			}
			v, err := strconv.ParseInt(fields[i-1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad allocs/op %q", sc.Text(), fields[i-1])
			}
			if prev, ok := out[name]; !ok || v > prev {
				out[name] = v
			}
		}
	}
	return out, sc.Err()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
