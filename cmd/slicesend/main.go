// Command slicesend is the source utility of the paper's prototype (§7.1):
// given a list of willing overlay nodes and the protocol parameters L, d,
// d', it arranges the relays into a forwarding graph, anonymously
// establishes it via sliced routing blocks injected from the source
// endpoints (the source plus its pseudo-sources, §3c), and streams a
// message to the hidden destination.
//
// Usage:
//
//	slicesend -book overlay.book -relays 1,2,3,4,5,6 -dest 6 \
//	          -sources 100,101 -L 3 -d 2 -msg "Let's meet at 5pm"
//
// The source endpoints must also appear in the address book; they bind
// local ports only to transmit.
package main

import (
	"flag"
	"log"
	"math/rand"
	"time"

	"infoslicing/internal/core"
	"infoslicing/internal/overlay"
	"infoslicing/internal/source"
	"infoslicing/internal/wire"

	"infoslicing/cmd/internal/book"
)

func main() {
	bookPath := flag.String("book", "overlay.book", "address book file")
	relaysFlag := flag.String("relays", "", "comma-separated relay ids (L*d' of them)")
	destFlag := flag.Uint("dest", 0, "destination id (must be among -relays)")
	sourcesFlag := flag.String("sources", "", "comma-separated source endpoint ids (d' of them)")
	l := flag.Int("L", 3, "path length (relay stages)")
	d := flag.Int("d", 2, "split factor")
	dp := flag.Int("dprime", 0, "slices sent per message (default d; > d adds churn redundancy)")
	msg := flag.String("msg", "hello from information slicing", "message to send anonymously")
	repeat := flag.Int("repeat", 1, "number of copies to send")
	seed := flag.Int64("seed", 0, "rng seed (0 = time-based)")
	flag.Parse()

	if *dp == 0 {
		*dp = *d
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	addrs, err := book.Load(*bookPath)
	if err != nil {
		log.Fatalf("slicesend: %v", err)
	}
	relays, err := book.ParseIDs(*relaysFlag)
	if err != nil {
		log.Fatalf("slicesend: -relays: %v", err)
	}
	sources, err := book.ParseIDs(*sourcesFlag)
	if err != nil {
		log.Fatalf("slicesend: -sources: %v", err)
	}
	tr := overlay.NewStaticTCP(addrs)
	defer tr.Close()
	for _, s := range sources {
		if err := tr.Attach(s, func(wire.NodeID, []byte) {}); err != nil {
			log.Fatalf("slicesend: attach source %d: %v", s, err)
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	g, err := core.Build(core.Spec{
		L: *l, D: *d, DPrime: *dp,
		Relays: relays, Dest: wire.NodeID(*destFlag), Sources: sources,
		Recode: true, Scramble: true, Rng: rng,
	})
	if err != nil {
		log.Fatalf("slicesend: %v", err)
	}
	snd := source.New(tr, g, source.Config{}, rng)
	start := time.Now()
	if err := snd.Establish(); err != nil {
		log.Fatalf("slicesend: establish: %v", err)
	}
	log.Printf("graph injected in %v: L=%d d=%d d'=%d, destination hidden in stage %d of %d",
		time.Since(start), *l, *d, *dp, g.DestStage, *l)
	// Give the graph a moment to settle before data (relays buffer data
	// that races ahead, but fresh deployments may still be dialing).
	time.Sleep(300 * time.Millisecond)
	for i := 0; i < *repeat; i++ {
		if err := snd.Send([]byte(*msg)); err != nil {
			log.Fatalf("slicesend: send: %v", err)
		}
	}
	// Let in-flight frames drain before tearing down connections.
	time.Sleep(500 * time.Millisecond)
	log.Printf("sent %d message(s) of %d bytes along %d disjoint paths",
		*repeat, len(*msg), *dp)
}
