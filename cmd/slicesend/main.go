// Command slicesend is the source utility of the paper's prototype (§7.1):
// given a list of willing overlay nodes and the protocol parameters L, d,
// d', it arranges the relays into a forwarding graph, anonymously
// establishes it via sliced routing blocks injected from the source
// endpoints (the source plus its pseudo-sources, §3c), and streams a
// message — or a file — to the hidden destination.
//
// Usage:
//
//	slicesend -book overlay.book -relays 1,2,3,4,5,6 -dest 6 \
//	          -sources 100,101 -L 3 -d 2 -msg "Let's meet at 5pm"
//
//	slicesend -book overlay.book -relays 1,2,3,4,5,6 -dest 6 \
//	          -sources 100,101,102 -L 2 -d 2 -dprime 3 \
//	          -in secret.tar -chunk 4096 -gap 50ms
//
// The source endpoints must also appear in the address book: they listen
// there for the establishment acknowledgment the destination floods back
// (§7.4), which is what lets slicesend retransmit a setup wave lost to a
// dead or slow relay instead of streaming into the void. With -gap the
// payload is paced, and with -resetup the (idempotent) setup wave is
// re-injected periodically so a relay that crashed and restarted
// mid-transfer can rejoin the graph.
package main

import (
	"flag"
	"log"
	"math/rand"
	"os"
	"time"

	"infoslicing/internal/core"
	"infoslicing/internal/simnet"
	"infoslicing/internal/source"
	"infoslicing/internal/wire"

	"infoslicing/cmd/internal/book"
)

func main() {
	bookPath := flag.String("book", "overlay.book", "address book file")
	relaysFlag := flag.String("relays", "", "comma-separated relay ids (L*d' of them)")
	destFlag := flag.Uint("dest", 0, "destination id (must be among -relays)")
	sourcesFlag := flag.String("sources", "", "comma-separated source endpoint ids (d' of them, in the book)")
	l := flag.Int("L", 3, "path length (relay stages)")
	d := flag.Int("d", 2, "split factor")
	dp := flag.Int("dprime", 0, "slices sent per message (default d; > d adds churn redundancy)")
	msg := flag.String("msg", "hello from information slicing", "message to send anonymously")
	inPath := flag.String("in", "", "send this file instead of -msg, chopped into -chunk byte messages")
	chunk := flag.Int("chunk", 4096, "bytes per message when sending -in")
	repeat := flag.Int("repeat", 1, "number of copies to send (-msg mode)")
	gap := flag.Duration("gap", 0, "pause between messages (paces a transfer)")
	resetup := flag.Duration("resetup", 0, "re-inject the setup wave at this interval during the transfer (0 = off)")
	estTimeout := flag.Duration("establish-timeout", 10*time.Second, "how long to wait for the establishment ack")
	seed := flag.Int64("seed", 0, "rng seed (0 = process base seed, printed for replay)")
	transportKind := flag.String("transport", "tcp", "wire transport: tcp (stream, reconnecting) or udp (congestion-controlled datagrams; loss absorbed by slicing redundancy, never retransmitted)")
	flag.Parse()

	if *dp == 0 {
		*dp = *d
	}
	if *seed == 0 {
		*seed = simnet.NextSeed()
	}
	addrs, err := book.Load(*bookPath)
	if err != nil {
		log.Fatalf("slicesend: %v", err)
	}
	relays, err := book.ParseIDs(*relaysFlag)
	if err != nil {
		log.Fatalf("slicesend: -relays: %v", err)
	}
	sources, err := book.ParseIDs(*sourcesFlag)
	if err != nil {
		log.Fatalf("slicesend: -sources: %v", err)
	}
	if *chunk <= 0 {
		log.Fatalf("slicesend: -chunk must be positive, got %d", *chunk)
	}
	var payloads [][]byte
	if *inPath != "" {
		blob, err := os.ReadFile(*inPath)
		if err != nil {
			log.Fatalf("slicesend: %v", err)
		}
		for off := 0; off < len(blob); off += *chunk {
			end := min(off+*chunk, len(blob))
			payloads = append(payloads, blob[off:end])
		}
	} else {
		for i := 0; i < *repeat; i++ {
			payloads = append(payloads, []byte(*msg))
		}
	}

	// Printed up front so any later failure — establishment, a lossy
	// transfer, corrupt output — is replayable with -seed.
	log.Printf("slicesend: seed %d", *seed)

	tr, err := book.NewTransport(*transportKind, addrs)
	if err != nil {
		log.Fatalf("slicesend: %v", err)
	}
	defer tr.Close()
	// The endpoints listen: the destination's establishment ack (and, were
	// repair enabled, failure reports) come back to them hop by hop.
	eps, err := source.AttachEndpoints(tr, sources)
	if err != nil {
		log.Fatalf("slicesend: %v", err)
	}
	defer eps.Close()

	rng := rand.New(rand.NewSource(*seed))
	g, err := core.Build(core.Spec{
		L: *l, D: *d, DPrime: *dp,
		Relays: relays, Dest: wire.NodeID(*destFlag), Sources: sources,
		Recode: true, Scramble: true, Rng: rng,
	})
	if err != nil {
		log.Fatalf("slicesend: %v", err)
	}
	snd := source.New(tr, g, source.Config{}, rng)
	start := time.Now()
	if err := snd.EstablishAndWait(eps, *estTimeout); err != nil {
		log.Fatalf("slicesend: establish: %v", err)
	}
	log.Printf("graph established in %v: L=%d d=%d d'=%d, destination hidden in stage %d of %d",
		time.Since(start), *l, *d, *dp, g.DestStage, *l)

	lastSetup := time.Now()
	sent := 0
	for _, p := range payloads {
		if *resetup > 0 && time.Since(lastSetup) >= *resetup {
			// Idempotent at every live relay; a relay that crashed and
			// came back decodes a fresh routing block and rejoins.
			if err := snd.Establish(); err != nil {
				log.Printf("slicesend: re-setup: %v", err)
			}
			lastSetup = time.Now()
		}
		if err := snd.Send(p); err != nil {
			log.Fatalf("slicesend: send: %v", err)
		}
		sent += len(p)
		if *gap > 0 {
			time.Sleep(*gap)
		}
	}
	// Transport Close drains each peer's queued frames (bounded by the
	// drain timeout); the extra beat lets the last round cross the graph.
	time.Sleep(500 * time.Millisecond)
	ps := tr.PeerStats()
	log.Printf("sent %d message(s), %d bytes, along %d disjoint paths (drops=%d sendFailures=%d reconnects=%d)",
		len(payloads), sent, *dp, snd.SendDrops(), ps.SendFailures, ps.Reconnects)
}
