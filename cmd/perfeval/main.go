// Command perfeval regenerates the performance figures of §7 using the
// calibrated 2007 environments (see internal/perf and EXPERIMENTS.md):
//
//	perfeval -fig 11   LAN per-flow throughput vs path length,
//	                   information slicing (d=2) vs onion routing
//	perfeval -fig 12   the same on the PlanetLab profile
//	perfeval -fig 13   total network throughput vs concurrent flows
//	perfeval -fig 14   LAN setup time vs path length for onion and d=2,3,4
//	perfeval -fig 15   the same on the PlanetLab profile
//	perfeval -fig 18   multi-core relay scaling: aggregate throughput and
//	                   p99 latency for N flows × GOMAXPROCS (§7 extension;
//	                   see EXPERIMENTS.md)
//	perfeval -fig 0    all of the above
//
// -cpuprofile and -mutexprofile write pprof profiles covering the run
// (combine with a single -fig so the profile isolates one experiment);
// the mutex profile is what shows a shard lock held across sends.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"infoslicing/internal/metrics"
	"infoslicing/internal/overlay"
	"infoslicing/internal/perf"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (11-15; 0 = all)")
	transfer := flag.Int("bytes", 1<<20, "transfer size for throughput figures")
	reps := flag.Int("reps", 3, "repetitions averaged per setup-time point")
	seed := flag.Int64("seed", 1, "rng seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile of the run to this file")
	flag.Parse()

	// Profiles cover the whole run: point perfeval at one figure (-fig 18
	// for relay scaling) so the profile isolates the experiment of interest.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("perfeval: create cpu profile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("perfeval: start cpu profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(5)
		defer func() {
			f, err := os.Create(*mutexprofile)
			if err != nil {
				log.Fatalf("perfeval: create mutex profile: %v", err)
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				log.Fatalf("perfeval: write mutex profile: %v", err)
			}
		}()
	}

	switch *fig {
	case 11:
		throughputFig("Fig. 11 — LAN per-flow throughput (Mb/s)", perf.LAN2007(), *transfer, *seed)
	case 12:
		throughputFig("Fig. 12 — PlanetLab per-flow throughput (Mb/s)", perf.PlanetLab2007(), *transfer/8, *seed)
	case 13:
		fig13(*transfer, *seed)
	case 14:
		setupFig("Fig. 14 — LAN graph setup time (ms)", perf.LAN2007(), *reps, *seed)
	case 15:
		setupFig("Fig. 15 — PlanetLab graph setup time (ms)", perf.PlanetLab2007(), *reps, *seed)
	case 18:
		scalingFig(*seed)
	case 0:
		throughputFig("Fig. 11 — LAN per-flow throughput (Mb/s)", perf.LAN2007(), *transfer, *seed)
		throughputFig("Fig. 12 — PlanetLab per-flow throughput (Mb/s)", perf.PlanetLab2007(), *transfer/8, *seed)
		fig13(*transfer, *seed)
		setupFig("Fig. 14 — LAN graph setup time (ms)", perf.LAN2007(), *reps, *seed)
		setupFig("Fig. 15 — PlanetLab graph setup time (ms)", perf.PlanetLab2007(), *reps, *seed)
		scalingFig(*seed)
	default:
		log.Fatalf("perfeval: unknown figure %d", *fig)
	}
}

// scalingFig sweeps the sharded relay across cores (see
// perf.RelayScaling): one table of aggregate goodput and one of p99
// per-message latency, with one series per concurrent-flow count.
func scalingFig(seed int64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	flowCounts := []int{1, 8, 32}
	tput := metrics.NewTable("Relay scaling — aggregate throughput (Mb/s) vs GOMAXPROCS", "procs")
	tail := metrics.NewTable("Relay scaling — p99 message latency (ms) vs GOMAXPROCS", "procs")
	var tputS, tailS []*metrics.Series
	for _, f := range flowCounts {
		tputS = append(tputS, tput.AddSeries(fmt.Sprintf("flows=%d", f)))
		tailS = append(tailS, tail.AddSeries(fmt.Sprintf("flows=%d", f)))
	}
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for i, flows := range flowCounts {
			res, err := perf.RelayScaling(perf.RelayScalingParams{
				Flows: flows, L: 2, D: 2,
				Messages: 32, MessageBytes: 2048, Seed: seed,
			})
			if err != nil {
				log.Fatalf("perfeval: scaling flows=%d procs=%d: %v", flows, procs, err)
			}
			tputS[i].Add(float64(procs), res.AggregateMbps)
			tailS[i].Add(float64(procs), float64(res.LatencyP99.Microseconds())/1000)
			if res.FlowsEvicted != 0 || res.FlowsRejected != 0 {
				// The tail numbers are meaningless if flows churned through
				// admission mid-run; a correctly sized table never evicts here.
				log.Fatalf("perfeval: scaling flows=%d procs=%d: flow table churned (evicted=%d rejected=%d)",
					flows, procs, res.FlowsEvicted, res.FlowsRejected)
			}
		}
		fmt.Fprintf(os.Stderr, "perfeval: scaling procs=%d done\n", procs)
	}
	tput.Fprint(os.Stdout)
	fmt.Println()
	tail.Fprint(os.Stdout)
	fmt.Println()
}

func throughputFig(title string, env perf.Env, transfer int, seed int64) {
	t := metrics.NewTable(title, "L")
	sl := t.AddSeries("slicing(d=2)")
	on := t.AddSeries("onion")
	for _, l := range []int{2, 3, 4, 5} {
		slr, err := perf.SlicingFlow(perf.Params{
			Profile: env.Profile, L: l, D: 2, DPrime: 2,
			TransferBytes: transfer, ChunkPayload: 2400, Seed: seed,
		})
		if err != nil {
			log.Fatalf("perfeval: slicing L=%d: %v", l, err)
		}
		onr, err := perf.OnionFlow(perf.Params{
			Profile: env.Profile, L: l, D: 1, OnionCryptoPerKB: env.OnionCryptoPerKB,
			TransferBytes: transfer, ChunkPayload: 1200, Seed: seed,
		})
		if err != nil {
			log.Fatalf("perfeval: onion L=%d: %v", l, err)
		}
		sl.Add(float64(l), slr.Throughput/1e6)
		on.Add(float64(l), onr.Throughput/1e6)
		fmt.Fprintf(os.Stderr, "perfeval: L=%d done\n", l)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

func fig13(transfer int, seed int64) {
	t := metrics.NewTable("Fig. 13 — network throughput vs concurrent flows (100-node pool, d=3, L=5)", "flows")
	tot := t.AddSeries("total(Mb/s)")
	for _, flows := range []int{1, 2, 4, 8, 16, 24} {
		bps, err := perf.SlicingScaling(perf.ScalingParams{
			Params: perf.Params{
				Profile: overlay.Unshaped(), L: 5, D: 3, DPrime: 3,
				TransferBytes: transfer / 4, ChunkPayload: 3600, Seed: seed,
			},
			PoolSize: 100, Flows: flows,
		})
		if err != nil {
			log.Fatalf("perfeval: scaling %d flows: %v", flows, err)
		}
		tot.Add(float64(flows), bps/1e6)
		fmt.Fprintf(os.Stderr, "perfeval: %d flows done\n", flows)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

func setupFig(title string, env perf.Env, reps int, seed int64) {
	t := metrics.NewTable(title, "L")
	onion := t.AddSeries("onion")
	var slicing []*metrics.Series
	for _, d := range []int{2, 3, 4} {
		slicing = append(slicing, t.AddSeries(fmt.Sprintf("slicing(d=%d)", d)))
	}
	for _, l := range []int{1, 2, 3, 4, 5, 6} {
		var onMS []float64
		for r := 0; r < reps; r++ {
			onr, err := perf.OnionFlow(perf.Params{
				Profile: env.Profile, L: l, D: 1, OnionCryptoPerKB: env.OnionCryptoPerKB,
				TransferBytes: 1 << 10, Seed: seed + int64(r),
			})
			if err != nil {
				log.Fatalf("perfeval: onion setup L=%d: %v", l, err)
			}
			onMS = append(onMS, float64(onr.SetupTime.Microseconds())/1000)
		}
		onion.Add(float64(l), metrics.Mean(onMS))
		for i, d := range []int{2, 3, 4} {
			var slMS []float64
			for r := 0; r < reps; r++ {
				slr, err := perf.SlicingFlow(perf.Params{
					Profile: env.Profile, L: l, D: d, DPrime: d,
					TransferBytes: 1 << 10, Seed: seed + int64(r),
				})
				if err != nil {
					log.Fatalf("perfeval: slicing setup L=%d d=%d: %v", l, d, err)
				}
				slMS = append(slMS, float64(slr.SetupTime.Microseconds())/1000)
			}
			slicing[i].Add(float64(l), metrics.Mean(slMS))
		}
		fmt.Fprintf(os.Stderr, "perfeval: setup L=%d done\n", l)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}
