// Package book parses the overlay address-book files shared by the
// slicenode and slicesend commands: one "id host:port" pair per line, with
// '#' comments and blank lines ignored.
package book

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"infoslicing/internal/wire"
)

// Load reads an address book file.
func Load(path string) (map[wire.NodeID]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[wire.NodeID]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'id host:port'", path, line)
		}
		id, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("%s:%d: bad id %q", path, line, fields[0])
		}
		if _, dup := out[wire.NodeID(id)]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate id %d", path, line, id)
		}
		out[wire.NodeID(id)] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty address book", path)
	}
	return out, nil
}

// ParseIDs parses a comma-separated id list ("3,4,5").
func ParseIDs(s string) ([]wire.NodeID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty id list")
	}
	var out []wire.NodeID
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("bad id %q", part)
		}
		out = append(out, wire.NodeID(id))
	}
	return out, nil
}
