package book

import (
	"fmt"

	"infoslicing/internal/overlay"
	"infoslicing/internal/transport"
	"infoslicing/internal/wire"
)

// Transport is the command-facing surface of the static socket transports:
// the full overlay contract plus the peer-layer diagnostics both daemons
// print at shutdown.
type Transport interface {
	overlay.Transport
	PeerStats() transport.Stats
	// LearnedEndpoints reports how many sender endpoints the transport's
	// registry has learned from inbound traffic (ids absent from the book).
	LearnedEndpoints() int
}

// NewTransport constructs the overlay substrate both commands share, keyed
// by the -transport flag: "tcp" for stream sockets (reconnect, writev
// batching), "udp" for congestion-controlled datagrams (sendmmsg batching,
// CUBIC windows, loss measured — never retransmitted; the slicing
// redundancy d' > d absorbs erasures instead).
func NewTransport(kind string, addrs map[wire.NodeID]string) (Transport, error) {
	switch kind {
	case "tcp":
		return overlay.NewStaticTCP(addrs), nil
	case "udp":
		return overlay.NewStaticUDP(addrs, overlay.UDPOptions{}), nil
	default:
		return nil, fmt.Errorf("unknown transport %q (want tcp or udp)", kind)
	}
}
