// Command graphdot builds a sample forwarding graph and prints it for
// inspection: the full stage topology in Graphviz DOT, one owner's
// vertex-disjoint slice paths, and per-relay knowledge reports that make
// the anonymity invariant of §3a concrete.
//
// Usage:
//
//	graphdot -L 3 -d 2 -dprime 3 > graph.dot
//	graphdot -L 3 -d 2 -paths 5           # slice paths of relay 5
//	graphdot -L 3 -d 2 -knowledge         # what every relay knows
//	graphdot -L 5 -d 2 -attack 0.3        # mount a colluding-relay attack
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"infoslicing/internal/audit"
	"infoslicing/internal/core"
	"infoslicing/internal/wire"
)

func main() {
	l := flag.Int("L", 3, "path length")
	d := flag.Int("d", 2, "split factor")
	dp := flag.Int("dprime", 0, "slices sent (default d)")
	seed := flag.Int64("seed", 1, "rng seed")
	paths := flag.Uint("paths", 0, "print the slice paths of this relay instead of the full graph")
	knowledge := flag.Bool("knowledge", false, "print per-relay knowledge reports")
	attack := flag.Float64("attack", 0, "compromise each relay with this probability and report what the collusion learns")
	flag.Parse()
	if *dp == 0 {
		*dp = *d
	}

	relays := make([]wire.NodeID, *l**dp)
	for i := range relays {
		relays[i] = wire.NodeID(i + 1)
	}
	sources := make([]wire.NodeID, *dp)
	for i := range sources {
		sources[i] = wire.NodeID(100 + i)
	}
	g, err := core.Build(core.Spec{
		L: *l, D: *d, DPrime: *dp,
		Relays: relays, Dest: relays[0], Sources: sources,
		Recode: true, Scramble: true,
		Rng: rand.New(rand.NewSource(*seed)),
	})
	if err != nil {
		log.Fatalf("graphdot: %v", err)
	}

	switch {
	case *attack > 0:
		rng := rand.New(rand.NewSource(*seed + 1))
		mal := map[wire.NodeID]bool{}
		for _, id := range relays {
			if rng.Float64() < *attack {
				mal[id] = true
			}
		}
		res := audit.Attack(g, mal)
		fmt.Printf("graph: L=%d d=%d d'=%d, destination = relay %d (stage %d)\n",
			*l, *d, *dp, g.Dest, g.DestStage)
		fmt.Printf("attacker compromised %d of %d relays (f=%.2g):", len(mal), len(relays), *attack)
		for id := range mal {
			fmt.Printf(" %d", id)
		}
		fmt.Println()
		fmt.Printf("routing blocks decoded (incl. honest nodes): %d, in %d induction rounds\n",
			len(res.Decoded), res.Iterations)
		fmt.Printf("destination identified: %v\n", res.DestIdentified)
		fmt.Printf("source stage exposed:   %v\n", res.SourceExposed)
	case *paths != 0:
		dot, err := g.SlicePathsDOT(wire.NodeID(*paths))
		if err != nil {
			log.Fatalf("graphdot: %v", err)
		}
		fmt.Print(dot)
	case *knowledge:
		for st := 1; st <= g.L; st++ {
			for _, id := range g.Stages[st-1] {
				k, err := g.KnowledgeOf(id)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Print(k, "\n")
			}
		}
		fmt.Printf("(source view: destination is relay %d, hidden in stage %d)\n",
			g.Dest, g.DestStage)
	default:
		fmt.Print(g.DOT())
	}
}
