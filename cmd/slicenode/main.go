// Command slicenode runs information-slicing overlay daemons — the
// per-host program of the paper's prototype (§7.1). It listens at its
// address-book endpoints, maintains a flow table keyed on flow-ids,
// forwards slices per the maps delivered in its sliced routing blocks, and
// prints (or writes) any message for which one of its relays turns out to
// be the destination.
//
// Usage:
//
//	slicenode -id 3 -book overlay.book
//	slicenode -id 2,3,5 -book overlay.book -out received.bin
//
// where overlay.book has one "id host:port" pair per line, e.g.
//
//	1 127.0.0.1:7001
//	2 127.0.0.2:7002
//	3 127.0.0.1:7003
//
// -id accepts a comma-separated list so one process can host several
// relays (a deployment packing more than one overlay identity per host);
// all of them share one transport — and therefore one connection (TCP) or
// one paced datagram peer (UDP, -transport=udp) per remote host, the peer
// model of internal/transport.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"infoslicing/internal/relay"

	"infoslicing/cmd/internal/book"
)

func main() {
	ids := flag.String("id", "", "this process's overlay id(s), comma-separated (each must appear in the book)")
	bookPath := flag.String("book", "overlay.book", "address book file: lines of 'id host:port'")
	outPath := flag.String("out", "", "append received message payloads to this file (default: print them)")
	transportKind := flag.String("transport", "tcp", "wire transport: tcp (stream, reconnecting) or udp (congestion-controlled datagrams; loss absorbed by slicing redundancy, never retransmitted)")
	maxFlows := flag.Int("maxflows", 0, "flow-table bound per relay: resident flows before admission refuses creations (0: relay default)")
	tenantQuota := flag.Int("tenantquota", 0, "per-tenant flow quota: max flows any one previous-hop may hold at a relay (0: no per-tenant bound below -maxflows)")
	flag.Parse()
	if *ids == "" {
		log.Fatal("slicenode: -id is required")
	}
	nodeIDs, err := book.ParseIDs(*ids)
	if err != nil {
		log.Fatalf("slicenode: -id: %v", err)
	}
	addrs, err := book.Load(*bookPath)
	if err != nil {
		log.Fatalf("slicenode: %v", err)
	}
	var out *os.File
	if *outPath != "" {
		out, err = os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("slicenode: %v", err)
		}
		defer out.Close()
	}
	tr, err := book.NewTransport(*transportKind, addrs)
	if err != nil {
		log.Fatalf("slicenode: %v", err)
	}
	defer tr.Close()

	// All relays of this process feed one delivery channel.
	delivered := make(chan relay.Message, 256)
	nodes := make([]*relay.Node, 0, len(nodeIDs))
	for _, id := range nodeIDs {
		node, err := relay.New(id, tr, relay.Config{
			MaxFlows:    *maxFlows,
			TenantQuota: *tenantQuota,
		})
		if err != nil {
			log.Fatalf("slicenode: relay %d: %v", id, err)
		}
		defer node.Close()
		nodes = append(nodes, node)
		go func(n *relay.Node) {
			for m := range n.Received() {
				delivered <- m
			}
		}(node)
		log.Printf("slicenode %d listening at %s", id, addrs[id])
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case m := <-delivered:
			if out != nil {
				// No per-message fsync: Write alone updates the in-kernel
				// size (what pollers Stat) and durability-per-chunk would
				// make the receiver disk-flush-bound.
				if _, err := out.Write(m.Data); err != nil {
					log.Fatalf("slicenode: write -out: %v", err)
				}
				log.Printf("received anonymous message (flow %x): %d bytes -> %s",
					uint64(m.Flow), len(m.Data), *outPath)
				continue
			}
			fmt.Printf("received anonymous message (flow %x): %q\n", uint64(m.Flow), m.Data)
		case <-sig:
			for _, n := range nodes {
				st := n.Stats()
				log.Printf("slicenode %d: setup=%d data=%d out=%d regenerated=%d delivered=%d sendDrops=%d",
					n.ID(), st.SetupPacketsIn, st.DataPacketsIn, st.PacketsOut,
					st.Regenerated, st.MessagesDelivered, st.SendDrops)
				log.Printf("slicenode %d flow table: flows=%d evicted=%d rejected=%d filterMisses=%d",
					n.ID(), n.FlowTableSize(), st.FlowsEvicted, st.FlowsRejected, st.FilterMisses)
			}
			ps := tr.PeerStats()
			log.Printf("slicenode transport: frames=%d bytes=%d flushes=%d drops=%d sendFailures=%d reconnects=%d learnedEndpoints=%d",
				ps.FramesOut, ps.BytesOut, ps.Flushes, ps.Dropped, ps.SendFailures, ps.Reconnects, tr.LearnedEndpoints())
			return
		}
	}
}
