// Command slicenode runs one information-slicing overlay daemon — the
// per-host program of the paper's prototype (§7.1). It listens at its
// address-book endpoint, maintains a flow table keyed on flow-ids, forwards
// slices per the maps delivered in its sliced routing block, and prints any
// message for which it turns out to be the destination.
//
// Usage:
//
//	slicenode -id 3 -book overlay.book
//
// where overlay.book has one "id host:port" pair per line, e.g.
//
//	1 127.0.0.1:7001
//	2 127.0.0.1:7002
//	3 127.0.0.1:7003
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"infoslicing/internal/overlay"
	"infoslicing/internal/relay"
	"infoslicing/internal/wire"

	"infoslicing/cmd/internal/book"
)

func main() {
	id := flag.Uint("id", 0, "this node's overlay id (must appear in the book)")
	bookPath := flag.String("book", "overlay.book", "address book file: lines of 'id host:port'")
	flag.Parse()
	if *id == 0 {
		log.Fatal("slicenode: -id is required")
	}
	addrs, err := book.Load(*bookPath)
	if err != nil {
		log.Fatalf("slicenode: %v", err)
	}
	tr := overlay.NewStaticTCP(addrs)
	defer tr.Close()
	node, err := relay.New(wire.NodeID(*id), tr, relay.Config{})
	if err != nil {
		log.Fatalf("slicenode: %v", err)
	}
	defer node.Close()
	log.Printf("slicenode %d listening at %s", *id, addrs[wire.NodeID(*id)])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case m := <-node.Received():
			fmt.Printf("received anonymous message (flow %x): %q\n", uint64(m.Flow), m.Data)
		case <-sig:
			st := node.Stats()
			log.Printf("slicenode %d: setup=%d data=%d out=%d regenerated=%d delivered=%d",
				*id, st.SetupPacketsIn, st.DataPacketsIn, st.PacketsOut,
				st.Regenerated, st.MessagesDelivered)
			return
		}
	}
}
