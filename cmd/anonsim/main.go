// Command anonsim regenerates the anonymity figures of the paper (§6):
//
//	anonsim -fig 7    source/destination anonymity vs fraction malicious,
//	                  with the Chaum-mix comparison (N=10000, L=8, d=3)
//	anonsim -fig 8    anonymity vs split factor d at f=0.1 and f=0.4
//	anonsim -fig 9    anonymity vs path length L (d=3, f=0.1)
//	anonsim -fig 10   anonymity vs added redundancy (d=3, L=8, f=0.1)
//	anonsim -fig 0    all of the above
//
// With -measured the fig-7 sweep is re-run on a full-size simnet overlay
// (-nodes sets its size, default 100000): the attacker observes only the
// slices the virtual network actually delivers, so -loss and -churn open a
// gap above the analytic curves.
//
// Output is one fixed-width table per figure; columns are the plotted
// series. Increase -trials for smoother curves (the paper uses 1000).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"infoslicing/internal/anonymity"
	"infoslicing/internal/metrics"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (7, 8, 9, 10; 0 = all)")
	trials := flag.Int("trials", 1000, "simulation trials per point")
	n := flag.Int("N", 10000, "overlay size (Monte-Carlo figures)")
	seed := flag.Int64("seed", 1, "rng seed")
	measured := flag.Bool("measured", false, "run the measured fig-7 sweep on a simnet overlay")
	nodes := flag.Int("nodes", 100000, "simnet overlay size for -measured")
	loss := flag.Float64("loss", 0, "per-link slice loss probability for -measured")
	churn := flag.Float64("churn", 0, "per-relay down probability for -measured")
	workers := flag.Int("workers", 1, "simnet partition-parallel width for -measured")
	flag.Parse()

	if *measured {
		figMeasured(*nodes, *trials, *seed, *loss, *churn, *workers)
		return
	}
	switch *fig {
	case 7:
		fig7(*n, *trials, *seed)
	case 8:
		fig8(*n, *trials, *seed)
	case 9:
		fig9(*n, *trials, *seed)
	case 10:
		fig10(*n, *trials, *seed)
	case 0:
		fig7(*n, *trials, *seed)
		fig8(*n, *trials, *seed)
		fig9(*n, *trials, *seed)
		fig10(*n, *trials, *seed)
	default:
		log.Fatalf("anonsim: unknown figure %d", *fig)
	}
}

// figMeasured is the fig-7 sweep hosted on a real simnet overlay of the
// given size: every trial's slice exchange actually runs over the virtual
// network, so the attacker's view shrinks to what was delivered.
func figMeasured(nodes, trials int, seed int64, loss, churn float64, workers int) {
	t := metrics.NewTable(fmt.Sprintf(
		"Fig. 7 (measured) — anonymity vs f on a %d-node simnet (L=8, d=3, loss=%g, churn=%g)",
		nodes, loss, churn), "f")
	src := t.AddSeries("src")
	dst := t.AddSeries("dst")
	aSrc := t.AddSeries("srcCase1")
	aAna := t.AddSeries("case1(analytic)")
	for _, f := range []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7} {
		r, err := anonymity.SimulateMeasured(anonymity.MeasuredParams{
			Params:    anonymity.Params{N: nodes, L: 8, D: 3, F: f, Trials: trials},
			Seed:      seed,
			Loss:      loss,
			ChurnDown: churn,
			Workers:   workers,
		})
		if err != nil {
			log.Fatalf("anonsim: %v", err)
		}
		src.Add(f, r.Source)
		dst.Add(f, r.Destination)
		aSrc.Add(f, r.SourceCase1)
		aAna.Add(f, anonymity.SourceCase1Prob(3, 3, f))
		fmt.Fprintf(os.Stderr, "anonsim: f=%.2f done (%d slices delivered, %d lost)\n",
			f, r.Deliveries, r.Lost)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

func simulate(p anonymity.Params) anonymity.Result {
	r, err := anonymity.Simulate(p)
	if err != nil {
		log.Fatalf("anonsim: %v", err)
	}
	return r
}

func fig7(n, trials int, seed int64) {
	t := metrics.NewTable("Fig. 7 — anonymity vs fraction of malicious nodes (N=10000, L=8, d=3)", "f")
	src := t.AddSeries("src")
	dst := t.AddSeries("dst")
	chSrc := t.AddSeries("src(Chaum)")
	chDst := t.AddSeries("dst(Chaum)")
	for _, f := range []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
		r := simulate(anonymity.Params{N: n, L: 8, D: 3, F: f, Trials: trials,
			Rng: rand.New(rand.NewSource(seed))})
		src.Add(f, r.Source)
		dst.Add(f, r.Destination)
		c, err := anonymity.SimulateChaum(anonymity.Params{N: n, L: 8, D: 3, F: f,
			Trials: trials, Rng: rand.New(rand.NewSource(seed + 1))})
		if err != nil {
			log.Fatal(err)
		}
		chSrc.Add(f, c.Source)
		chDst.Add(f, c.Destination)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

func fig8(n, trials int, seed int64) {
	t := metrics.NewTable("Fig. 8 — anonymity vs split factor d (N=10000, L=8)", "d")
	s1 := t.AddSeries("src(f=0.1)")
	d1 := t.AddSeries("dst(f=0.1)")
	s4 := t.AddSeries("src(f=0.4)")
	d4 := t.AddSeries("dst(f=0.4)")
	for d := 2; d <= 12; d++ {
		r1 := simulate(anonymity.Params{N: n, L: 8, D: d, F: 0.1, Trials: trials,
			Rng: rand.New(rand.NewSource(seed))})
		r4 := simulate(anonymity.Params{N: n, L: 8, D: d, F: 0.4, Trials: trials,
			Rng: rand.New(rand.NewSource(seed + 1))})
		s1.Add(float64(d), r1.Source)
		d1.Add(float64(d), r1.Destination)
		s4.Add(float64(d), r4.Source)
		d4.Add(float64(d), r4.Destination)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

func fig9(n, trials int, seed int64) {
	t := metrics.NewTable("Fig. 9 — anonymity vs path length L (N=10000, d=3, f=0.1)", "L")
	src := t.AddSeries("src")
	dst := t.AddSeries("dst")
	for l := 2; l <= 20; l += 2 {
		r := simulate(anonymity.Params{N: n, L: l, D: 3, F: 0.1, Trials: trials,
			Rng: rand.New(rand.NewSource(seed))})
		src.Add(float64(l), r.Source)
		dst.Add(float64(l), r.Destination)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

func fig10(n, trials int, seed int64) {
	t := metrics.NewTable("Fig. 10 — anonymity vs added redundancy (d=3, L=8, f=0.1)", "R")
	src := t.AddSeries("src")
	dst := t.AddSeries("dst")
	for dp := 3; dp <= 10; dp++ {
		r := simulate(anonymity.Params{N: n, L: 8, D: 3, DPrime: dp, F: 0.1,
			Trials: trials, Rng: rand.New(rand.NewSource(seed))})
		red := float64(dp-3) / 3
		src.Add(red, r.Source)
		dst.Add(red, r.Destination)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}
