// Command churnsim regenerates the churn-resilience results of §8:
//
//	churnsim -fig 16   analytic P(success) vs added redundancy for
//	                   information slicing and onion+erasure-codes, at node
//	                   failure probabilities 0.1 and 0.3 (L=5, d=2)
//	churnsim -fig 17   experimental session success over a failure-injected
//	                   overlay running the real protocol stacks: slicing,
//	                   onion+erasure-codes, and standard onion routing
//	churnsim -fig 19   live-repair extension: end-to-end delivery when every
//	                   flow loses more same-stage relays than the redundancy
//	                   budget covers, with the control plane in repair vs
//	                   detection-only mode
//	churnsim -fig 0    all of the above
//
// With -scale the tool instead runs a session-churn scenario on an
// N-node walker universe (-nodes, default 100000): Weibull sessions and
// lognormal downtimes over a quarter of the overlay while walker traffic
// circulates, reporting deliveries, events/sec, and heap bytes/node.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"infoslicing/internal/churn"
	"infoslicing/internal/metrics"
	"infoslicing/internal/simnet"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (16, 17; 0 = both)")
	trials := flag.Int("trials", 25, "sessions per point (fig 17)")
	failProb := flag.Float64("p", 0.2, "per-session node failure probability (fig 17)")
	seed := flag.Int64("seed", 1, "rng seed")
	scale := flag.Bool("scale", false, "run the scale session-churn scenario instead of a figure")
	nodes := flag.Int("nodes", 100000, "universe size for -scale")
	workers := flag.Int("workers", runtime.NumCPU(), "simnet partition-parallel width for -scale")
	window := flag.Duration("window", 100*time.Millisecond, "virtual run window for -scale")
	flag.Parse()

	if *scale {
		runScale(*nodes, *workers, *seed, *window)
		return
	}
	switch *fig {
	case 16:
		fig16()
	case 17:
		fig17(*trials, *failProb, *seed)
	case 19:
		fig19(*seed)
	case 0:
		fig16()
		fig17(*trials, *failProb, *seed)
		fig19(*seed)
	default:
		log.Fatalf("churnsim: unknown figure %d", *fig)
	}
}

// runScale exercises the million-node event core: an N-node walker
// universe under trace-style session churn, driven partition-parallel.
func runScale(nodes, workers int, seed int64, window time.Duration) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	clk := simnet.NewVirtualClock()
	if workers > 1 {
		clk.SetWorkers(workers)
	}
	net := simnet.NewSimNet(clk, seed, simnet.LinkProfile{Delay: time.Millisecond})
	s := &simnet.Script{Clk: clk, Net: net}
	u, err := simnet.NewUniverse(s, simnet.UniverseConfig{
		Nodes: nodes, Degree: 4, Walkers: nodes / 10, Seed: seed,
	})
	if err != nil {
		log.Fatalf("churnsim: %v", err)
	}
	sched := s.ScheduleSessionChurn(simnet.SessionChurnSpec{
		Nodes:    u.NodeIDs()[:nodes/4],
		Session:  simnet.SessionDist{Kind: simnet.DistWeibull, Shape: 0.6, Scale: window / 5},
		Downtime: simnet.SessionDist{Kind: simnet.DistLognormal, Shape: 0.8, Scale: window / 10},
		Start:    window / 20,
		Stop:     window * 9 / 10,
		Seed:     seed + 1,
	})
	u.Seed()
	t0 := time.Now()
	u.Run(window)
	wall := time.Since(t0)

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	perNode := float64(after.HeapAlloc-before.HeapAlloc) / float64(nodes)
	fmt.Printf("scale scenario: %d nodes, %d workers, %s virtual window\n", nodes, workers, window)
	fmt.Printf("  deliveries        %d\n", u.Deliveries())
	fmt.Printf("  churn transitions %d\n", len(sched))
	fmt.Printf("  wall time         %s (%.0f events/sec)\n", wall.Round(time.Millisecond),
		float64(u.Deliveries())/wall.Seconds())
	fmt.Printf("  heap              %.0f bytes/node\n", perNode)
	runtime.KeepAlive(u)
}

func fig16() {
	const l, d = 5, 2
	for _, p := range []float64{0.1, 0.3} {
		t := metrics.NewTable(
			fmt.Sprintf("Fig. 16 — analytic transfer success vs redundancy (L=%d, d=%d, p=%g)", l, d, p),
			"R")
		sl := t.AddSeries("slicing")
		ec := t.AddSeries("onion+EC")
		for dp := d; dp <= d*6; dp++ {
			r := float64(dp-d) / float64(d)
			sl.Add(r, churn.SlicingSuccess(l, d, dp, p))
			ec.Add(r, churn.OnionECSuccess(l, d, dp, p))
		}
		t.Fprint(os.Stdout)
		fmt.Println()
	}
}

func fig17(trials int, p float64, seed int64) {
	const l, d = 5, 2
	t := metrics.NewTable(
		fmt.Sprintf("Fig. 17 — experimental session success vs redundancy (L=%d, d=%d, p=%g, %d trials)",
			l, d, p, trials),
		"R")
	sl := t.AddSeries("slicing")
	ec := t.AddSeries("onion+EC")
	so := t.AddSeries("std-onion")
	for dp := d; dp <= d*3; dp++ {
		res, err := churn.RunExperiment(churn.ExperimentParams{
			L: l, D: d, DPrime: dp,
			NodeFailProb: p, Trials: trials, Seed: seed,
			Messages: 4, MessageBytes: 512,
		})
		if err != nil {
			log.Fatalf("churnsim: %v", err)
		}
		r := float64(dp-d) / float64(d)
		sl.Add(r, res.Slicing)
		ec.Add(r, res.OnionEC)
		so.Add(r, res.StandardOnion)
		fmt.Fprintf(os.Stderr, "churnsim: R=%.1f done (slicing %.2f, onion+EC %.2f, std %.2f)\n",
			r, res.Slicing, res.OnionEC, res.StandardOnion)
	}
	t.Fprint(os.Stdout)
}

// fig19 sweeps the number of same-stage kills per flow: at kills <= d'-d
// redundancy alone survives; past that only the repair path does.
func fig19(seed int64) {
	const l, d, dp = 3, 2, 3
	t := metrics.NewTable(
		fmt.Sprintf("Fig. 19 (extension) — delivery under stage-collapse churn (L=%d, d=%d, d'=%d)", l, d, dp),
		"kills")
	rep := t.AddSeries("repair")
	det := t.AddSeries("detection-only")
	spl := t.AddSeries("splices")
	for kills := 1; kills < dp; kills++ {
		p := churn.LiveRepairParams{
			L: l, D: d, DPrime: dp,
			Flows: 2, Messages: 6, MessageBytes: 512,
			KillPerFlow: kills, Trials: 2, Seed: seed,
		}
		p.Repair = true
		on, err := churn.RunLiveRepair(p)
		if err != nil {
			log.Fatalf("churnsim: %v", err)
		}
		p.Repair = false
		off, err := churn.RunLiveRepair(p)
		if err != nil {
			log.Fatalf("churnsim: %v", err)
		}
		rep.Add(float64(kills), on.Delivered)
		det.Add(float64(kills), off.Delivered)
		spl.Add(float64(kills), float64(on.Splices))
		fmt.Fprintf(os.Stderr, "churnsim: kills=%d done (repair %.2f, detection-only %.2f, %d splices)\n",
			kills, on.Delivered, off.Delivered, on.Splices)
	}
	t.Fprint(os.Stdout)
}
