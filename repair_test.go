package infoslicing

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"infoslicing/internal/relay"
	"infoslicing/internal/wire"
)

// The acceptance stress for the live churn control plane, meant to run
// under -race: N flows share one failure-injected overlay and every flow
// loses two same-stage relays mid-stream — one more than the d'-d=1
// redundancy budget covers. With repair on, at least 90% of all messages
// must still decode end-to-end and every Conn must report its splices; the
// identical schedule with repair off must measurably degrade. That gap is
// the point: the repair path, not just redundancy, carries the sessions.

type repairScenarioResult struct {
	delivered, sent int
	splices         int64
}

// waitAllEstablished blocks until every relay of the flow's graph has
// decoded its routing block. Dial only waits for the destination; failures
// injected before the rest of the graph settles are churn *during setup*,
// which the paper excludes (§8) and which no data-phase repair can undo at
// d'=d — the experiments fail relays mid-transfer, so the tests do too.
func waitAllEstablished(t *testing.T, nw *Network, c *Conn, timeout time.Duration) {
	t.Helper()
	nw.mu.Lock()
	nodes := make(map[NodeID]*relay.Node, len(nw.nodes))
	for id, n := range nw.nodes {
		nodes[id] = n
	}
	nw.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for _, id := range c.graph.Relays {
		for !nodes[id].Established(c.graph.Flows[id]) {
			if time.Now().After(deadline) {
				t.Fatalf("relay %d never established", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func runRepairScenario(t *testing.T, repair bool) repairScenarioResult {
	t.Helper()
	const (
		flows     = 4
		pool      = 40
		perPhase  = 2 // messages per flow per phase; 3 phases
		l, d, dp  = 3, 2, 3
		recvTimeo = 5 * time.Second
	)
	nw := New(
		WithSeed(424242),
		WithControlPlane(20*time.Millisecond),
		WithRelayConfig(relay.Config{
			SetupWait:       100 * time.Millisecond,
			RoundWait:       80 * time.Millisecond,
			Heartbeat:       20 * time.Millisecond,
			LivenessTimeout: 80 * time.Millisecond,
		}),
	)
	defer nw.Close()
	if _, err := nw.Grow(pool); err != nil {
		t.Fatal(err)
	}
	conns := make([]*Conn, flows)
	for i := range conns {
		c, err := nw.Dial(DialSpec{L: l, D: d, DPrime: dp, Repair: repair})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	for _, c := range conns {
		waitAllEstablished(t, nw, c, 10*time.Second)
	}

	// Two same-stage victims per flow, globally distinct, never a
	// destination of any flow, chosen before any failure can mutate a
	// graph.
	dests := make(map[NodeID]bool)
	for _, c := range conns {
		dests[c.Dest()] = true
	}
	used := make(map[NodeID]bool)
	victims := make([][2]NodeID, flows)
	for i, c := range conns {
		found := false
		for st := 0; st < l && !found; st++ {
			var cand []NodeID
			for _, id := range c.graph.Stages[st] {
				if !dests[id] && !used[id] {
					cand = append(cand, id)
				}
			}
			if len(cand) >= 2 {
				victims[i] = [2]NodeID{cand[0], cand[1]}
				used[cand[0]], used[cand[1]] = true, true
				found = true
			}
		}
		if !found {
			t.Fatalf("flow %d: no stage with two fresh victims", i)
		}
	}

	res := repairScenarioResult{}
	var mu sync.Mutex
	phase := func(name string) {
		var wg sync.WaitGroup
		for i, c := range conns {
			wg.Add(1)
			go func(i int, c *Conn) {
				defer wg.Done()
				for m := 0; m < perPhase; m++ {
					msg := []byte(fmt.Sprintf("%s/flow%d/msg%d", name, i, m))
					if err := c.Send(msg); err != nil {
						continue
					}
					mu.Lock()
					res.sent++
					mu.Unlock()
					select {
					case <-c.Received():
						mu.Lock()
						res.delivered++
						mu.Unlock()
					case <-time.After(recvTimeo):
					}
				}
			}(i, c)
		}
		wg.Wait()
	}
	fail := func(k int) {
		for i := range conns {
			nw.Fail(victims[i][k])
		}
		if repair {
			// Each flow must splice at least once per victim it lost so
			// far; overlapping graphs may splice more.
			deadline := time.Now().Add(30 * time.Second)
			for _, c := range conns {
				for c.RepairStats().Splices < int64(k+1) && time.Now().Before(deadline) {
					time.Sleep(10 * time.Millisecond)
				}
			}
			time.Sleep(300 * time.Millisecond) // replacements establish, patches land
		} else {
			time.Sleep(500 * time.Millisecond)
		}
	}

	phase("intact")
	fail(0)
	phase("one-down")
	fail(1)
	phase("two-down")

	for _, c := range conns {
		res.splices += c.RepairStats().Splices
	}
	return res
}

func TestRepairStressEveryFlowLosesRelays(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second overlay stress")
	}
	on := runRepairScenario(t, true)
	t.Logf("repair on:  %d/%d delivered, %d splices", on.delivered, on.sent, on.splices)
	if on.sent == 0 {
		t.Fatal("nothing sent")
	}
	rate := float64(on.delivered) / float64(on.sent)
	if rate < 0.9 {
		t.Fatalf("repair-on delivery %.2f, want >= 0.90", rate)
	}
	if on.splices < 8 { // 4 flows × ≥2 victims each
		t.Fatalf("only %d splices reported across conns, want >= 8", on.splices)
	}

	off := runRepairScenario(t, false)
	t.Logf("repair off: %d/%d delivered, %d splices", off.delivered, off.sent, off.splices)
	offRate := float64(off.delivered) / float64(off.sent)
	if off.splices != 0 {
		t.Fatalf("repair-off arm spliced %d times", off.splices)
	}
	if offRate >= rate || offRate > 0.8 {
		t.Fatalf("repair-off delivery %.2f does not demonstrate degradation (repair-on %.2f)",
			offRate, rate)
	}
}

// TestDialRepairSingleFailure is the smoke-sized facade check: one flow,
// one failure past establishment, message still delivered, stats exposed.
func TestDialRepairSingleFailure(t *testing.T) {
	nw := New(
		WithSeed(7),
		WithControlPlane(20*time.Millisecond),
		WithRelayConfig(relay.Config{
			SetupWait:       100 * time.Millisecond,
			RoundWait:       80 * time.Millisecond,
			Heartbeat:       20 * time.Millisecond,
			LivenessTimeout: 80 * time.Millisecond,
		}),
	)
	defer nw.Close()
	if _, err := nw.Grow(16); err != nil {
		t.Fatal(err)
	}
	conn, err := nw.Dial(DialSpec{L: 2, D: 2, DPrime: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitAllEstablished(t, nw, conn, 10*time.Second)

	// d'=d: zero redundancy — only repair can save the flow.
	var victim wire.NodeID
	for st := 0; st < 2 && victim == 0; st++ {
		for _, id := range conn.graph.Stages[st] {
			if id != conn.Dest() {
				victim = id
				break
			}
		}
	}
	nw.Fail(victim)
	deadline := time.Now().Add(30 * time.Second)
	for conn.RepairStats().Splices == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if conn.RepairStats().Splices == 0 {
		t.Fatal("no splice after relay failure")
	}
	time.Sleep(200 * time.Millisecond)
	msg := []byte("post-repair, zero redundancy")
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-conn.Received():
		if string(got) != string(msg) {
			t.Fatal("message corrupted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("message lost despite repair")
	}
	if s := conn.RepairStats(); s.Reports == 0 {
		t.Fatalf("stats incomplete: %+v", s)
	}
}
