module infoslicing

go 1.24
