package infoslicing

import (
	"testing"
	"time"

	"infoslicing/internal/relay"
	"infoslicing/internal/simnet"
)

// The facade on virtual time: WithTransport(VirtualSpec) swaps the
// transport for a simnet universe and threads the clock through every relay
// and sender, so a full Dial → kill → splice → deliver cycle — the same
// shape as the wall-clock TestDialRepairSingleFailure — runs in
// milliseconds of real time, driven entirely by stepping the clock.
func TestVirtualTimeDialRepairSingleFailure(t *testing.T) {
	simnet.ReportSeed(t)
	vc := simnet.NewVirtualClock()
	nw := New(
		WithSeed(7),
		WithTransport(VirtualSpec{Clock: vc}),
		WithControlPlane(20*time.Millisecond),
		WithRelayConfig(relay.Config{
			SetupWait:       100 * time.Millisecond,
			RoundWait:       80 * time.Millisecond,
			Heartbeat:       20 * time.Millisecond,
			LivenessTimeout: 80 * time.Millisecond,
		}),
	)
	defer nw.Close()
	if _, err := nw.Grow(16); err != nil {
		t.Fatal(err)
	}
	conn, err := nw.Dial(DialSpec{L: 2, D: 2, DPrime: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The rest of the graph past the destination: wait until every relay
	// decoded (failures during setup are out of scope, §8).
	ok := vc.AwaitCond(10*time.Second, func() bool {
		for _, id := range conn.graph.Relays {
			nw.mu.Lock()
			n := nw.nodes[id]
			nw.mu.Unlock()
			if !n.Established(conn.graph.Flows[id]) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("graph never established in virtual time")
	}

	// d'=d: zero redundancy — only repair can save the flow.
	var victim NodeID
	for st := 0; st < 2 && victim == 0; st++ {
		for _, id := range conn.graph.Stages[st] {
			if id != conn.Dest() {
				victim = id
				break
			}
		}
	}
	nw.Fail(victim)
	if !vc.AwaitCond(30*time.Second, func() bool { return conn.RepairStats().Splices >= 1 }) {
		t.Fatal("no splice after relay failure")
	}
	vc.RunFor(200 * time.Millisecond) // replacement establishes, patches land
	msg := []byte("post-repair, zero redundancy, virtual time")
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	var got []byte
	ok = vc.AwaitCond(10*time.Second, func() bool {
		select {
		case m := <-conn.Received():
			got = m
			return true
		default:
			return false
		}
	})
	if !ok {
		t.Fatal("message lost despite repair")
	}
	if string(got) != string(msg) {
		t.Fatal("message corrupted")
	}
	if s := conn.RepairStats(); s.Reports == 0 {
		t.Fatalf("stats incomplete: %+v", s)
	}
}
