package infoslicing

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func newNet(t *testing.T, relays int, seed int64) *Network {
	t.Helper()
	nw := New(WithSeed(seed))
	if _, err := nw.Grow(relays); err != nil {
		t.Fatal(err)
	}
	return nw
}

func recvOne(t *testing.T, c *Conn, timeout time.Duration) []byte {
	t.Helper()
	select {
	case m := <-c.Received():
		return m
	case <-time.After(timeout):
		t.Fatal("no message delivered")
		return nil
	}
}

func TestQuickstartFlow(t *testing.T) {
	nw := newNet(t, 12, 1)
	defer nw.Close()
	conn, err := nw.Dial(DialSpec{L: 3, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("Let's meet at 5pm")
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, conn, 10*time.Second); !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if conn.SetupTime() <= 0 {
		t.Fatal("setup time not recorded")
	}
	if s := conn.DestStage(); s < 1 || s > 3 {
		t.Fatalf("dest stage %d", s)
	}
}

func TestDialValidation(t *testing.T) {
	nw := newNet(t, 4, 2)
	defer nw.Close()
	if _, err := nw.Dial(DialSpec{L: 5, D: 3}); err == nil {
		t.Fatal("oversized graph accepted")
	}
	if _, err := nw.Dial(DialSpec{L: 2, D: 2, Dest: 9999}); err == nil {
		t.Fatal("unknown dest accepted")
	}
}

func TestDialDefaults(t *testing.T) {
	nw := newNet(t, 8, 3)
	defer nw.Close()
	conn, err := nw.Dial(DialSpec{}) // L=3, D=2 defaults
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("defaults work")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, conn, 10*time.Second)
}

func TestPinnedDestination(t *testing.T) {
	nw := newNet(t, 10, 4)
	defer nw.Close()
	ids := nw.Nodes()
	want := ids[0]
	conn, err := nw.Dial(DialSpec{L: 2, D: 2, Dest: want})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Dest() != want {
		t.Fatalf("dest %d want %d", conn.Dest(), want)
	}
	conn.Send([]byte("pinned"))
	recvOne(t, conn, 10*time.Second)
}

func TestRedundantFlowSurvivesFailure(t *testing.T) {
	nw := newNet(t, 16, 5)
	defer nw.Close()
	conn, err := nw.Dial(DialSpec{L: 4, D: 2, DPrime: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Kill two relays that are not the destination.
	killed := 0
	for _, id := range nw.Nodes() {
		if id != conn.Dest() && killed < 2 {
			nw.Fail(id)
			killed++
		}
	}
	msg := bytes.Repeat([]byte("churn"), 500)
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, conn, 15*time.Second); !bytes.Equal(got, msg) {
		t.Fatal("corrupted under failure")
	}
}

func TestMultipleConcurrentConns(t *testing.T) {
	nw := newNet(t, 20, 6)
	defer nw.Close()
	conns := make([]*Conn, 3)
	for i := range conns {
		c, err := nw.Dial(DialSpec{L: 3, D: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	for i, c := range conns {
		msg := []byte{byte(i), 0xAA, byte(i)}
		if err := c.Send(msg); err != nil {
			t.Fatal(err)
		}
		if got := recvOne(t, c, 10*time.Second); !bytes.Equal(got, msg) {
			t.Fatalf("conn %d cross-talk: %v", i, got)
		}
	}
}

func TestNetworkCloseIdempotentAndRejectsUse(t *testing.T) {
	nw := newNet(t, 6, 7)
	nw.Close()
	nw.Close()
	if _, err := nw.Grow(1); err == nil {
		t.Fatal("grow after close accepted")
	}
	if _, err := nw.Dial(DialSpec{}); err == nil {
		t.Fatal("dial after close accepted")
	}
}

// ExampleNetwork_Dial demonstrates the package quickstart end to end.
func ExampleNetwork_Dial() {
	nw := New(WithSeed(42))
	defer nw.Close()
	if _, err := nw.Grow(12); err != nil {
		panic(err)
	}
	conn, err := nw.Dial(DialSpec{L: 3, D: 2})
	if err != nil {
		panic(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("Let's meet at 5pm")); err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", <-conn.Received())
	// Output: Let's meet at 5pm
}

func TestASDiverseSelection(t *testing.T) {
	nw := newNet(t, 40, 9)
	defer nw.Close()
	// Every relay must have a routable synthetic address.
	for _, id := range nw.Nodes() {
		if _, ok := nw.Addr(id); !ok {
			t.Fatalf("relay %d has no address", id)
		}
	}
	if _, ok := nw.Addr(9999); ok {
		t.Fatal("unknown relay has an address")
	}
	conn, err := nw.Dial(DialSpec{L: 4, D: 2, ASDiverse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("diverse")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, conn, 10*time.Second); !bytes.Equal(got, []byte("diverse")) {
		t.Fatal("mismatch")
	}
}

func TestFailReviveRoundTrip(t *testing.T) {
	nw := newNet(t, 6, 8)
	defer nw.Close()
	id := nw.Nodes()[0]
	nw.Fail(id)
	nw.Revive(id)
	// Still usable end to end.
	conn, err := nw.Dial(DialSpec{L: 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Send([]byte("revived"))
	recvOne(t, conn, 10*time.Second)
	if nw.Stats().Packets == 0 {
		t.Fatal("no packets counted")
	}
}
