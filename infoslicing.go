// Package infoslicing is a Go implementation of information slicing
// (Katti, Cohen, Katabi — "Information Slicing: Anonymity Using Unreliable
// Overlays", NSDI 2007): anonymous, confidential, churn-resilient
// communication over peer-to-peer overlays without any public-key
// cryptography.
//
// Instead of onion layers, the sender multiplies each message with a random
// matrix over GF(2^8), splits the result into d slices, and routes the
// slices along vertex-disjoint paths that meet only at the destination.
// Relays learn nothing but their own next hops; fewer than d slices carry
// no information at all; and with d' > d slices plus in-network network
// coding the flow survives relay churn.
//
// The package exposes a deliberately small facade:
//
//	nw := infoslicing.New(infoslicing.WithSeed(1))
//	defer nw.Close()
//	nw.Grow(24)                          // spin up overlay relays
//	conn, _ := nw.Dial(infoslicing.DialSpec{L: 3, D: 2})
//	conn.Send([]byte("Let's meet at 5pm"))
//	msg := <-conn.Received()             // delivered at the hidden destination
//
// The full machinery — coding (internal/code), forwarding-graph
// construction (internal/core), the relay daemon (internal/relay), overlay
// transports and churn (internal/overlay), baselines and evaluation
// harnesses — lives under internal/; see DESIGN.md for the map.
package infoslicing

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"slices"
	"sync"
	"time"

	"infoslicing/internal/asmap"
	"infoslicing/internal/core"
	"infoslicing/internal/overlay"
	"infoslicing/internal/relay"
	"infoslicing/internal/simnet"
	"infoslicing/internal/source"
	"infoslicing/internal/wire"
)

// NodeID identifies an overlay node.
type NodeID = wire.NodeID

// Profile re-exports the overlay shaping profile.
type Profile = overlay.Profile

// Shaping profile constructors.
var (
	// LAN emulates the paper's 1 Gb/s local testbed.
	LAN = overlay.LAN
	// PlanetLab emulates the paper's loaded wide-area testbed.
	PlanetLab = overlay.PlanetLab
	// Unshaped runs at raw in-memory speed.
	Unshaped = overlay.Unshaped
)

// TransportStats re-exports the unified transport counter vocabulary.
type TransportStats = overlay.TransportStats

// bookTransport is the shared surface of the address-book socket
// transports (StaticTCP, StaticUDP): the full overlay.Transport plus the
// dynamic-attach escape hatch the facade needs for relays grown on the fly.
type bookTransport interface {
	overlay.Transport
	AttachDynamic(id wire.NodeID, h overlay.Handler) error
}

// staticFacade adapts a book transport to the facade: node ids with a book
// entry bind their pre-agreed address, everything else — relays grown on
// the fly, transient source endpoints — binds a fresh loopback port that
// stays resolvable inside this process.
type staticFacade struct{ bookTransport }

func (s staticFacade) Attach(id wire.NodeID, h overlay.Handler) error {
	if err := s.bookTransport.Attach(id, h); err == nil || !errors.Is(err, overlay.ErrUnknownNode) {
		return err
	}
	return s.bookTransport.AttachDynamic(id, h)
}

// Network is an in-process information-slicing overlay: a transport plus a
// set of relay daemons.
type Network struct {
	cfg config
	rng *rand.Rand
	chn overlay.Transport

	mu      sync.Mutex
	nodes   map[NodeID]*relay.Node
	addrs   map[NodeID]netip.Addr // synthetic IPs for AS-diverse selection
	asTable *asmap.Table
	nextID  NodeID
	nextSrc NodeID
	conns   []*Conn
	closed  bool
}

// transportKind enumerates the substrates WithTransport can select.
type transportKind int

const (
	chanKind    transportKind = iota // in-memory ChanNetwork (default)
	tcpKind                          // StaticTCP over real sockets
	udpKind                          // StaticUDP, congestion-controlled datagrams
	virtualKind                      // simnet.SimNet on a virtual clock
)

type config struct {
	profile       Profile
	seed          int64
	relayCfg      relay.Config
	hasRelayCfg   bool
	ctrlHeartbeat time.Duration

	kind    transportKind
	vclk    *simnet.VirtualClock
	book    map[NodeID]string
	udpLoss float64

	maxFlows    int
	tenantQuota int
}

// clock returns the network's time source: the injected virtual clock, or
// the wall clock.
func (c *config) clock() simnet.Clock {
	if c.vclk != nil {
		return c.vclk
	}
	return simnet.Wall
}

// Option configures a Network.
type Option func(*config)

// WithProfile selects the traffic-shaping profile (default Unshaped).
func WithProfile(p Profile) Option { return func(c *config) { c.profile = p } }

// WithSeed makes the network deterministic.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithRelayConfig overrides relay daemon timers.
func WithRelayConfig(rc relay.Config) Option {
	return func(c *config) { c.relayCfg = rc; c.hasRelayCfg = true }
}

// WithFlowTable bounds every relay daemon's flow table: at most maxFlows
// resident flows per daemon and at most tenantQuota of them created by any
// one previous-hop tenant (zero keeps the relay defaults). Composes with
// WithRelayConfig — these bounds win when both are set, so harness code can
// tighten admission without restating the whole timer config.
func WithFlowTable(maxFlows, tenantQuota int) Option {
	return func(c *config) { c.maxFlows = maxFlows; c.tenantQuota = tenantQuota }
}

// WithControlPlane enables the relays' live-churn control plane: every
// established flow heartbeats its children at the given interval, and a
// parent quiet for 4× that interval is reported toward the source.
// DialSpec.Repair needs this on to hear about failures.
func WithControlPlane(heartbeat time.Duration) Option {
	return func(c *config) { c.ctrlHeartbeat = heartbeat }
}

// TransportSpec selects the overlay substrate a Network runs on. Exactly
// one substrate is active per Network; passing several WithTransport
// options is not an error — the last one wins (there is no panic-based
// exclusivity anymore). The zero default, with no WithTransport at all, is
// the in-memory ChanNetwork shaped by WithProfile.
type TransportSpec interface {
	apply(*config)
}

// TCPSpec runs the overlay over real TCP sockets through the production
// peer layer (internal/transport: per-peer bounded queues, batched writev
// writers, reconnect with backoff). Book may pin listen addresses for
// specific node ids — the paper's pre-agreed address book (§7.1) — and may
// be nil or partial: ids without an entry bind a fresh loopback port,
// which in-process senders resolve transparently.
//
// Traffic shaping (WithProfile) is not emulated over real sockets. For
// multi-process overlays use cmd/slicenode and cmd/slicesend with a shared
// book file instead of the facade.
type TCPSpec struct {
	Book map[NodeID]string
}

func (s TCPSpec) apply(c *config) {
	c.kind, c.book, c.vclk, c.udpLoss = tcpKind, s.Book, nil, 0
}

// UDPSpec runs the overlay over congestion-controlled UDP datagrams: the
// same peer core as TCPSpec, but frames pack whole into datagrams sent
// with sendmmsg under a per-destination CUBIC window paced by the
// transport's ack/echo channel. Lost datagrams are never retransmitted —
// the slicing redundancy (d' > d) absorbs loss, and persistent loss beyond
// the budget is escalated to splice repair on flows dialed with Repair.
//
// Loss injects an independent drop probability on every endpoint's inbound
// datagrams (a socket-level netem shim for experiments); zero for none.
type UDPSpec struct {
	Book map[NodeID]string
	Loss float64
}

func (s UDPSpec) apply(c *config) {
	c.kind, c.book, c.vclk, c.udpLoss = udpKind, s.Book, nil, s.Loss
}

// VirtualSpec runs the whole network — transport, relay timers,
// heartbeats, repair loops — on a virtual clock instead of the wall clock.
// The caller drives the universe by stepping the clock (RunFor,
// AwaitCond); combined with WithSeed the network becomes fully
// deterministic. A nil Clock gets a fresh one, reachable via
// Network.VirtualClock. Bandwidth shaping and CPU-delay emulation of the
// profile are not modeled under virtual time (latency and loss are).
type VirtualSpec struct {
	Clock *simnet.VirtualClock
}

func (s VirtualSpec) apply(c *config) {
	vc := s.Clock
	if vc == nil {
		vc = simnet.NewVirtualClock()
	}
	c.kind, c.vclk, c.book, c.udpLoss = virtualKind, vc, nil, 0
}

// WithTransport selects the overlay substrate (see TransportSpec). It is
// the single construction path for every transport flavour; a nil spec
// keeps the default in-memory network.
func WithTransport(spec TransportSpec) Option {
	return func(c *config) {
		if spec != nil {
			spec.apply(c)
		}
	}
}

// WithStaticTCP runs the overlay over real TCP sockets.
//
// Deprecated: use WithTransport(TCPSpec{Book: book}).
func WithStaticTCP(book map[NodeID]string) Option {
	return WithTransport(TCPSpec{Book: book})
}

// WithVirtualTime runs the network on the given virtual clock.
//
// Deprecated: use WithTransport(VirtualSpec{Clock: vc}).
func WithVirtualTime(vc *simnet.VirtualClock) Option {
	return WithTransport(VirtualSpec{Clock: vc})
}

// New creates an empty overlay network. Without WithSeed the seed derives
// from the process base seed (simnet.BaseSeed), so a failing run can be
// replayed by pinning INFOSLICING_SEED.
func New(opts ...Option) *Network {
	cfg := config{profile: overlay.Unshaped(), seed: simnet.NextSeed()}
	for _, o := range opts {
		o(&cfg)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	// The synthetic BGP table stands in for route-views (§9.1): relays get
	// addresses inside it so DialSpec.ASDiverse can spread stages across
	// autonomous systems.
	table, err := asmap.Synthetic(64, rand.New(rand.NewSource(cfg.seed+2)))
	if err != nil {
		panic(err) // parameters are constants; unreachable
	}
	var tr overlay.Transport
	switch cfg.kind {
	case virtualKind:
		tr = simnet.NewSimNet(cfg.vclk, cfg.seed+1, simnet.LinkProfile{
			Delay:  cfg.profile.LatencyMin,
			Jitter: cfg.profile.LatencyMax - cfg.profile.LatencyMin,
			Loss:   cfg.profile.Loss,
		})
	case tcpKind:
		tr = staticFacade{overlay.NewStaticTCP(cfg.book)}
	case udpKind:
		tr = staticFacade{overlay.NewStaticUDP(cfg.book, overlay.UDPOptions{
			Loss: cfg.udpLoss,
			Seed: cfg.seed + 3,
		})}
	default:
		tr = overlay.NewChanNetwork(cfg.profile, rand.New(rand.NewSource(cfg.seed+1)))
	}
	return &Network{
		cfg:     cfg,
		rng:     rng,
		chn:     tr,
		nodes:   make(map[NodeID]*relay.Node),
		addrs:   make(map[NodeID]netip.Addr),
		asTable: table,
		nextID:  1,
		nextSrc: 1 << 20,
	}
}

// Errors.
var (
	ErrClosed    = errors.New("infoslicing: network closed")
	ErrTooSmall  = errors.New("infoslicing: not enough relays")
	ErrNoConsent = errors.New("infoslicing: destination not in network")
)

// Grow adds k relay daemons to the overlay and returns their ids.
func (nw *Network) Grow(k int) ([]NodeID, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.closed {
		return nil, ErrClosed
	}
	ids := make([]NodeID, 0, k)
	for i := 0; i < k; i++ {
		id := nw.nextID
		nw.nextID++
		rc := nw.cfg.relayCfg
		if !nw.cfg.hasRelayCfg {
			rc = relay.Config{
				SetupWait: 200 * time.Millisecond,
				RoundWait: 200 * time.Millisecond,
			}
		}
		if rc.Heartbeat == 0 && nw.cfg.ctrlHeartbeat > 0 {
			rc.Heartbeat = nw.cfg.ctrlHeartbeat
		}
		if nw.cfg.maxFlows > 0 {
			rc.MaxFlows = nw.cfg.maxFlows
		}
		if nw.cfg.tenantQuota > 0 {
			rc.TenantQuota = nw.cfg.tenantQuota
		}
		rc.Clock = nw.cfg.clock()
		if nw.cfg.vclk != nil {
			// One worker per node keeps the per-link send order canonical,
			// which is what makes virtual-time runs trace-deterministic.
			rc.Shards = 1
		}
		rc.Rng = rand.New(rand.NewSource(nw.cfg.seed + int64(id)*31))
		n, err := relay.New(id, nw.chn, rc)
		if err != nil {
			return ids, err
		}
		nw.nodes[id] = n
		nw.addrs[id] = asmap.RandomAddr(nw.rng)
		ids = append(ids, id)
	}
	return ids, nil
}

// Addr returns a relay's synthetic IP address (used by AS-diverse
// selection; real deployments would use the node's public address).
func (nw *Network) Addr(id NodeID) (netip.Addr, bool) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	a, ok := nw.addrs[id]
	return a, ok
}

// Nodes lists the live relay ids.
func (nw *Network) Nodes() []NodeID {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	ids := make([]NodeID, 0, len(nw.nodes))
	for id := range nw.nodes {
		ids = append(ids, id)
	}
	return ids
}

// pickReplacement chooses a live spare relay for a flow's repair loop: any
// node of the overlay the exclusion predicate permits (it rules out the
// flow's current graph members and endpoints) that is not currently failed.
// Selection is random so repeated repairs spread load across the pool.
func (nw *Network) pickReplacement(exclude func(wire.NodeID) bool) (wire.NodeID, bool) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	ids := make([]NodeID, 0, len(nw.nodes))
	for id := range nw.nodes {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	nw.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		if !exclude(id) && !nw.chn.Down(id) {
			return id, true
		}
	}
	return 0, false
}

// Fail crashes a relay (churn injection); Revive restores it.
func (nw *Network) Fail(id NodeID) { nw.chn.Fail(id) }

// Revive restores a failed relay.
func (nw *Network) Revive(id NodeID) { nw.chn.Revive(id) }

// Stats returns the transport's cumulative counters.
func (nw *Network) Stats() TransportStats { return nw.chn.Stats() }

// VirtualClock returns the network's virtual clock, or nil when it runs on
// the wall clock (useful with VirtualSpec{Clock: nil}, where the facade
// creates the clock).
func (nw *Network) VirtualClock() *simnet.VirtualClock { return nw.cfg.vclk }

// Close shuts down every relay and the transport.
func (nw *Network) Close() {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return
	}
	nw.closed = true
	nodes := nw.nodes
	nw.nodes = map[NodeID]*relay.Node{}
	conns := nw.conns
	nw.mu.Unlock()
	for _, c := range conns {
		c.stop()
	}
	for _, n := range nodes {
		n.Close()
	}
	nw.chn.Close()
}

// DialSpec configures an anonymous flow.
type DialSpec struct {
	L int // path length (relay stages); default 3
	D int // split factor; default 2

	// DPrime adds churn redundancy when > D (defaults to D).
	DPrime int

	// Dest pins the destination relay; 0 picks one at random.
	Dest NodeID

	// Recode disables in-network redundancy regeneration when set to false
	// explicitly via NoRecode.
	NoRecode bool
	// NoScramble disables the per-hop pattern-hiding transforms.
	NoScramble bool

	// ASDiverse selects relays spread across autonomous systems using the
	// network's synthetic BGP table (§9.1), limiting what an adversary who
	// owns large address blocks can place on the graph.
	ASDiverse bool

	// Repair runs the live-churn control plane for this flow: the source
	// endpoints stay attached as listeners, consume the ParentDown reports
	// relays flood toward them, and answer each with a splice that swaps a
	// spare relay in for the dead one mid-stream. Requires the network's
	// relays to run with WithControlPlane (or a heartbeat-enabled
	// WithRelayConfig); without it failures are never detected and Repair
	// only adds the listener.
	Repair bool

	// EstablishTimeout bounds the wait for the graph to come up
	// (default 10s).
	EstablishTimeout time.Duration
}

// Conn is one established anonymous flow from this process to a hidden
// destination relay.
type Conn struct {
	nw      *Network
	sender  *source.Sender
	graph   *core.Graph
	dest    *relay.Node
	srcs    []NodeID          // transient source-endpoint attachments
	eps     *source.Endpoints // non-nil when Repair is on
	unwatch func()            // removes the transport loss watcher, if any

	recv     chan []byte
	done     chan struct{}
	stopOnce sync.Once

	setupTime time.Duration
}

// RepairStats re-exports the per-flow repair counters.
type RepairStats = source.RepairStats

// Dial selects relays, builds a forwarding graph, establishes it, and waits
// until the destination can decode.
func (nw *Network) Dial(spec DialSpec) (*Conn, error) {
	if spec.L == 0 {
		spec.L = 3
	}
	if spec.D == 0 {
		spec.D = 2
	}
	if spec.DPrime == 0 {
		spec.DPrime = spec.D
	}
	if spec.EstablishTimeout == 0 {
		spec.EstablishTimeout = 10 * time.Second
	}
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return nil, ErrClosed
	}
	need := spec.L * spec.DPrime
	ids := make([]NodeID, 0, len(nw.nodes))
	for id := range nw.nodes {
		ids = append(ids, id)
	}
	if len(ids) < need {
		nw.mu.Unlock()
		return nil, fmt.Errorf("%w: need %d, have %d", ErrTooSmall, need, len(ids))
	}
	// Deterministic order before shuffling (map iteration is random).
	slices.Sort(ids)
	nw.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if spec.ASDiverse {
		// Reorder candidates so AS diversity is maximised among the first
		// `need` picks (§9.1): one relay per AS before any AS repeats.
		byAddr := make(map[netip.Addr]NodeID, len(ids))
		cands := make([]netip.Addr, 0, len(ids))
		for _, id := range ids {
			a := nw.addrs[id]
			byAddr[a] = id
			cands = append(cands, a)
		}
		picked, err := asmap.DiverseSelect(nw.asTable, cands, len(cands), nw.rng)
		if err == nil {
			ids = ids[:0]
			for _, a := range picked {
				ids = append(ids, byAddr[a])
			}
		}
	}
	var relays []NodeID
	if spec.Dest != 0 {
		if _, ok := nw.nodes[spec.Dest]; !ok {
			nw.mu.Unlock()
			return nil, ErrNoConsent
		}
		relays = append(relays, spec.Dest)
		for _, id := range ids {
			if id != spec.Dest && len(relays) < need {
				relays = append(relays, id)
			}
		}
	} else {
		relays = ids[:need]
		spec.Dest = relays[nw.rng.Intn(need)]
	}
	// Source endpoints: the sender plus pseudo-sources (§3c). Without
	// repair they are transmit-only attachments; with repair they are real
	// listeners (source.Endpoints) that hear acks and failure reports.
	srcs := make([]NodeID, spec.DPrime)
	for i := range srcs {
		srcs[i] = nw.nextSrc
		nw.nextSrc++
	}
	seed := nw.rng.Int63()
	destNode := nw.nodes[spec.Dest]
	nw.mu.Unlock()

	var eps *source.Endpoints
	if spec.Repair {
		e, err := source.AttachEndpoints(nw.chn, srcs)
		if err != nil {
			return nil, err
		}
		eps = e
	} else {
		for i, s := range srcs {
			if err := nw.chn.Attach(s, func(NodeID, []byte) {}); err != nil {
				for _, prev := range srcs[:i] {
					nw.chn.Detach(prev)
				}
				return nil, err
			}
		}
	}
	detachSrcs := func() {
		if eps != nil {
			eps.Close()
			return
		}
		for _, s := range srcs {
			nw.chn.Detach(s)
		}
	}

	g, err := core.Build(core.Spec{
		L: spec.L, D: spec.D, DPrime: spec.DPrime,
		Relays: relays, Dest: spec.Dest, Sources: srcs,
		Recode:   !spec.NoRecode,
		Scramble: !spec.NoScramble,
		Rng:      rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		detachSrcs()
		return nil, err
	}
	clk := nw.cfg.clock()
	snd := source.New(nw.chn, g, source.Config{Clock: clk}, rand.New(rand.NewSource(seed+1)))
	start := clk.Now()
	if err := snd.Establish(); err != nil {
		detachSrcs()
		return nil, err
	}
	c := &Conn{
		nw: nw, sender: snd, graph: g, dest: destNode, srcs: srcs, eps: eps,
		recv: make(chan []byte, 64),
		done: make(chan struct{}),
	}
	// Wait for the destination to decode its routing block. Under virtual
	// time the wait *drives* the clock; on the wall clock it polls with a
	// bounded backoff instead of busy-spinning.
	established := func() bool { return destNode.Established(g.Flows[spec.Dest]) }
	if nw.cfg.vclk != nil {
		if !nw.cfg.vclk.AwaitCond(spec.EstablishTimeout, established) {
			detachSrcs()
			return nil, errors.New("infoslicing: establish timeout")
		}
	} else {
		deadline := time.Now().Add(spec.EstablishTimeout)
		wait := 200 * time.Microsecond
		const maxWait = 20 * time.Millisecond
		for !established() {
			if time.Now().After(deadline) {
				detachSrcs()
				return nil, errors.New("infoslicing: establish timeout")
			}
			time.Sleep(wait)
			if wait < maxWait {
				wait *= 2
			}
		}
	}
	c.setupTime = clk.Now().Sub(start)

	if spec.Repair {
		// The source must heartbeat at least as often as the relays expect
		// their parents to: match whichever option enabled the control
		// plane before falling back to the loop's own default.
		hb := nw.cfg.ctrlHeartbeat
		if hb <= 0 && nw.cfg.hasRelayCfg {
			hb = nw.cfg.relayCfg.Heartbeat
		}
		if hb <= 0 {
			hb = 100 * time.Millisecond
		}
		if err := snd.StartRepair(eps, source.RepairConfig{
			Heartbeat: hb,
			Pick:      nw.pickReplacement,
		}); err != nil {
			detachSrcs()
			return nil, err
		}
		// Loss-measuring transports (UDP) feed the repair loop a second
		// failure signal: persistent per-destination datagram loss beyond
		// the slicing redundancy budget (d'−d)/d' cannot be absorbed by
		// coding, so it is escalated exactly like a ParentDown report — the
		// flow splices around the lossy node rather than retransmitting.
		// Loss within the budget never fires (redundancy absorbs it).
		if lr, ok := nw.chn.(overlay.LossReporter); ok {
			threshold := float64(spec.DPrime-spec.D) / float64(spec.DPrime)
			if threshold < 0.02 {
				threshold = 0.02 // d'=d: any persistent loss is fatal, but debounce noise
			}
			c.unwatch = lr.AddLossWatcher(threshold, func(to NodeID, rate float64) {
				eps.InjectTransportDown(to)
			})
		}
	}

	// Demultiplex the destination relay's deliveries for this flow.
	destFlow := g.Flows[spec.Dest]
	go func() {
		for {
			select {
			case m := <-destNode.Received():
				if m.Flow == destFlow {
					select {
					case c.recv <- m.Data:
					case <-c.done:
						return
					}
				}
			case <-c.done:
				return
			}
		}
	}()
	nw.mu.Lock()
	nw.conns = append(nw.conns, c)
	nw.mu.Unlock()
	return c, nil
}

// Send transmits an anonymous, confidential message to the destination.
func (c *Conn) Send(msg []byte) error { return c.sender.Send(msg) }

// Received yields messages decoded and decrypted by the destination.
func (c *Conn) Received() <-chan []byte { return c.recv }

// Dest returns the destination relay's id (known only to the sender side).
func (c *Conn) Dest() NodeID { return c.graph.Dest }

// DestStage returns the 1-indexed stage the destination was hidden in.
func (c *Conn) DestStage() int { return c.graph.DestStage }

// SetupTime reports how long graph establishment took.
func (c *Conn) SetupTime() time.Duration { return c.setupTime }

// RepairStats reports the flow's live-repair counters (all zero unless the
// flow was dialed with Repair).
func (c *Conn) RepairStats() RepairStats { return c.sender.RepairStats() }

// Close releases the flow's demultiplexer and detaches the transient
// source endpoints. Relay-side flow state expires via GC.
func (c *Conn) Close() { c.stop() }

func (c *Conn) stop() {
	c.stopOnce.Do(func() {
		close(c.done)
		if c.unwatch != nil {
			c.unwatch()
		}
		c.sender.StopRepair()
		if c.eps != nil {
			c.eps.Close()
			return
		}
		for _, s := range c.srcs {
			c.nw.chn.Detach(s)
		}
	})
}
