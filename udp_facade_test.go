package infoslicing

import (
	"bytes"
	"testing"
	"time"

	"infoslicing/internal/simnet"
)

// The facade over congestion-controlled datagrams: WithTransport(UDPSpec)
// swaps the in-memory channel transport for loopback UDP through the
// datagram peer layer, and the public API must behave identically — grow,
// dial, send, receive.
func TestFacadeUDPLoopback(t *testing.T) {
	simnet.ReportSeed(t)
	nw := New(WithSeed(13), WithTransport(UDPSpec{}))
	defer nw.Close()
	if _, err := nw.Grow(9); err != nil {
		t.Fatal(err)
	}
	conn, err := nw.Dial(DialSpec{L: 3, D: 2, DPrime: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		msg := bytes.Repeat([]byte{byte(i + 1)}, 1000+i*500)
		if err := conn.Send(msg); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-conn.Received():
			if !bytes.Equal(got, msg) {
				t.Fatalf("message %d corrupted over loopback UDP", i)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("message %d not delivered", i)
		}
	}
	st := nw.Stats()
	if st.Packets == 0 || st.Bytes == 0 {
		t.Fatalf("transport counters did not move: %+v", st)
	}
	if st.Retransmissions != 0 {
		t.Fatalf("datagram transport retransmitted: %+v", st)
	}
}

// Injected datagram loss within the redundancy budget: with d'=d+1 the flow
// tolerates one erasure per round, so 2% uniform socket-level loss must not
// stop delivery — and the transport must restore nothing by retransmission.
// This is the facade-level twin of the perf harness's UDPLoopback loss run.
func TestFacadeUDPLoopbackWithLoss(t *testing.T) {
	simnet.ReportSeed(t)
	nw := New(WithSeed(17), WithTransport(UDPSpec{Loss: 0.02}))
	defer nw.Close()
	if _, err := nw.Grow(9); err != nil {
		t.Fatal(err)
	}
	conn, err := nw.Dial(DialSpec{L: 2, D: 2, DPrime: 3, EstablishTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	delivered := 0
	const total = 20
	for i := 0; i < total; i++ {
		msg := bytes.Repeat([]byte{byte(i + 1)}, 800)
		if err := conn.Send(msg); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-conn.Received():
			if !bytes.Equal(got, msg) {
				t.Fatalf("message %d corrupted", i)
			}
			delivered++
		case <-time.After(5 * time.Second):
			// A round that lost >d'−d slices is gone for good (no transport
			// retransmission, no app-level retry here); count and move on.
		}
	}
	if delivered < total*9/10 {
		t.Fatalf("delivered %d/%d under 2%% loss; redundancy d'=d+1 should absorb it", delivered, total)
	}
	if st := nw.Stats(); st.Retransmissions != 0 {
		t.Fatalf("loss was papered over by retransmission: %+v", st)
	}
}

// The api_redesign pin: every TransportSpec constructs through the one
// WithTransport path, the deprecated wrappers delegate to it, and NO
// combination of options panics — the old WithStaticTCP+WithVirtualTime
// pair used to; now the last spec simply wins.
func TestWithTransportOptionCombinations(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		kind transportKind
	}{
		{"default", nil, chanKind},
		{"nil spec", []Option{WithTransport(nil)}, chanKind},
		{"tcp", []Option{WithTransport(TCPSpec{})}, tcpKind},
		{"udp", []Option{WithTransport(UDPSpec{Loss: 0.01})}, udpKind},
		{"virtual", []Option{WithTransport(VirtualSpec{})}, virtualKind},
		{"deprecated tcp wrapper", []Option{WithStaticTCP(nil)}, tcpKind},
		{"deprecated virtual wrapper", []Option{WithVirtualTime(simnet.NewVirtualClock())}, virtualKind},
		{"tcp then virtual: last wins", []Option{WithTransport(TCPSpec{}), WithTransport(VirtualSpec{})}, virtualKind},
		{"virtual then tcp: last wins", []Option{WithVirtualTime(simnet.NewVirtualClock()), WithStaticTCP(nil)}, tcpKind},
		{"udp then default stays udp", []Option{WithTransport(UDPSpec{}), WithTransport(nil)}, udpKind},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw := New(append([]Option{WithSeed(1)}, tc.opts...)...)
			defer nw.Close()
			if nw.cfg.kind != tc.kind {
				t.Fatalf("transport kind = %d, want %d", nw.cfg.kind, tc.kind)
			}
			// Cross-substrate invariants: a virtual network exposes its
			// clock, every other substrate runs on the wall clock.
			if (nw.VirtualClock() != nil) != (tc.kind == virtualKind) {
				t.Fatalf("VirtualClock() = %v under kind %d", nw.VirtualClock(), tc.kind)
			}
		})
	}
}

// VirtualSpec with a nil Clock: the facade creates one and exposes it, so
// callers can still drive the universe.
func TestVirtualSpecNilClock(t *testing.T) {
	nw := New(WithSeed(3), WithTransport(VirtualSpec{}))
	defer nw.Close()
	vc := nw.VirtualClock()
	if vc == nil {
		t.Fatal("VirtualSpec{Clock: nil} left no clock to drive")
	}
	if _, err := nw.Grow(8); err != nil {
		t.Fatal(err)
	}
	conn, err := nw.Dial(DialSpec{L: 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Send([]byte("driven by the facade's own clock"))
	got := awaitRecv(t, vc, conn, 10*time.Second)
	if string(got) != "driven by the facade's own clock" {
		t.Fatalf("got %q", got)
	}
}

func awaitRecv(t *testing.T, vc *simnet.VirtualClock, conn *Conn, d time.Duration) []byte {
	t.Helper()
	var got []byte
	if !vc.AwaitCond(d, func() bool {
		select {
		case got = <-conn.Received():
			return true
		default:
			return false
		}
	}) {
		t.Fatal("message not delivered in virtual time")
	}
	return got
}
